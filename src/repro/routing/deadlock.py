"""Channel-dependency deadlock analysis (paper §3.5, Duato [11]).

The MMR's best-effort routing is deadlock-free because its escape layer —
up*/down* routing — has an acyclic channel dependency graph, and Duato's
theory extends that freedom to the fully adaptive layer.  This module
makes the argument checkable: it builds the channel dependency graph a
routing relation induces on a topology and searches it for cycles.

A *channel* is a directed link (u, v).  Routing relation R induces a
dependency (c1 -> c2) when some packet can hold c1 while requesting c2.
Crucially, only *reachable* (channel, destination) pairs count: a channel
contributes dependencies toward destination d only if some packet headed
for d can actually occupy it (found by forward reachability from every
injection point), otherwise phantom dependencies manufacture cycles no
traffic can realise.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..network.topology import Topology
from .updown import UpDownRouting

#: A directed channel: (from node, to node).
Channel = Tuple[int, int]

# relation(channel_in, node, destination) -> permitted next channels out of
# ``node``; ``channel_in`` is None at injection.
RoutingRelation = Callable[[Optional[Channel], int, int], Iterable[Channel]]


def all_channels(topology: Topology) -> List[Channel]:
    """Every directed link of the topology."""
    out = []
    for a, b in topology.edges():
        out.append((a, b))
        out.append((b, a))
    return sorted(out)


def _check_adjacent(node: int, channel: Channel) -> None:
    if channel[0] != node:
        raise ValueError(
            f"relation returned non-adjacent continuation from node "
            f"{node}: {channel}"
        )


def build_dependency_graph(
    topology: Topology, relation: RoutingRelation
) -> Dict[Channel, Set[Channel]]:
    """Channel dependency graph induced by ``relation``.

    For each destination, forward reachability runs from every possible
    source's injection: a dependency c1 -> c2 is recorded only when a
    packet for that destination can hold c1 and legally continue on c2.
    """
    graph: Dict[Channel, Set[Channel]] = {c: set() for c in all_channels(topology)}
    for destination in range(topology.num_nodes):
        frontier: deque = deque()
        seen: Set[Channel] = set()
        for source in range(topology.num_nodes):
            if source == destination:
                continue
            for channel in relation(None, source, destination):
                _check_adjacent(source, channel)
                if channel not in seen:
                    seen.add(channel)
                    frontier.append(channel)
        while frontier:
            channel = frontier.popleft()
            node = channel[1]
            if node == destination:
                continue  # consumed, no onward demand
            for next_channel in relation(channel, node, destination):
                _check_adjacent(node, next_channel)
                graph[channel].add(next_channel)
                if next_channel not in seen:
                    seen.add(next_channel)
                    frontier.append(next_channel)
    return graph


def find_cycle(graph: Dict[Channel, Set[Channel]]) -> Optional[List[Channel]]:
    """One dependency cycle, or None when the graph is acyclic.

    Iterative DFS with colouring (graphs reach thousands of channels).
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in graph}
    parent: Dict[Channel, Optional[Channel]] = {}
    for root in graph:
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[Channel, Iterable[Channel]]] = [
            (root, iter(sorted(graph[root])))
        ]
        colour[root] = GREY
        parent[root] = None
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if colour[child] == WHITE:
                    colour[child] = GREY
                    parent[child] = node
                    stack.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if colour[child] == GREY:
                    # Reconstruct the cycle child -> ... -> node -> child.
                    cycle = [child]
                    walk = node
                    while walk != child:
                        cycle.append(walk)
                        walk = parent[walk]
                    cycle.reverse()
                    return cycle
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def updown_relation(topology: Topology, root: int = 0) -> RoutingRelation:
    """The up*/down* routing relation as a dependency-graph input."""
    updown = UpDownRouting(topology, root)

    def relation(channel_in: Optional[Channel], node: int, destination: int):
        arrived_up = None if channel_in is None else updown.is_up(channel_in[0], node)
        for port, neighbor, goes_up in updown.legal_next_hops(
            node, destination, arrived_up
        ):
            yield (node, neighbor)

    return relation


def minimal_adaptive_relation(topology: Topology) -> RoutingRelation:
    """Unrestricted minimal adaptive routing (no escape layer).

    Provided to demonstrate the hazard: on topologies with cycles this
    relation's dependency graph is cyclic, which is why the MMR pairs the
    adaptive class with an up*/down* escape.
    """

    def relation(channel_in: Optional[Channel], node: int, destination: int):
        if node == destination:
            return
        here = topology.distance(node, destination)
        for neighbor in topology.neighbors(node):
            if topology.distance(neighbor, destination) < here:
                yield (node, neighbor)

    return relation


def verify_deadlock_free(
    topology: Topology, relation: RoutingRelation
) -> Optional[List[Channel]]:
    """None when ``relation`` is deadlock-free on ``topology`` (acyclic
    CDG); otherwise the offending cycle."""
    return find_cycle(build_dependency_graph(topology, relation))
