"""Routing algorithms: EPB connection establishment, adaptive best-effort."""

from .adaptive import AdaptiveRouter, RouteChoice
from .epb import ProbeResult, count_minimal_paths, epb_search, profitable_ports
from .deadlock import (
    build_dependency_graph,
    find_cycle,
    minimal_adaptive_relation,
    updown_relation,
    verify_deadlock_free,
)
from .history import HistoryStore
from .updown import UpDownRouting

__all__ = [
    "AdaptiveRouter",
    "RouteChoice",
    "ProbeResult",
    "count_minimal_paths",
    "epb_search",
    "profitable_ports",
    "HistoryStore",
    "build_dependency_graph",
    "find_cycle",
    "minimal_adaptive_relation",
    "updown_relation",
    "verify_deadlock_free",
    "UpDownRouting",
]
