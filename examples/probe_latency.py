#!/usr/bin/env python
"""Connection-establishment latency under load (§3.5, §4.2).

Uses the cycle-accurate probe protocol: routing probes travel hop by hop,
reserving resources; backtrack tokens retrace and release on dead ends;
acks install the connection on the way back.  As the network fills up,
probes search more links and backtrack more, so establishment latency
climbs and the acceptance ratio falls — the PCS cost model the MMR trades
against its jitter guarantees.

Run:  python examples/probe_latency.py
"""

from repro import (
    BandwidthRequest,
    BiasedPriority,
    Network,
    ProbeProtocol,
    RouterConfig,
    SeededRng,
    Simulator,
    irregular,
)
from repro.harness.report import format_table
from repro.sim.stats import RunningStats

rng = SeededRng(99, "probe-latency")
topology = irregular(16, rng.spawn("topo"), mean_degree=3.0)
config = RouterConfig(
    num_ports=topology.num_ports,
    vcs_per_port=64,
    round_factor=8,
    enforce_round_budgets=False,
)
sim = Simulator()
network = Network(topology, config, BiasedPriority(), sim, rng.spawn("net"))
protocol = ProbeProtocol(network)

print(f"{topology.num_nodes}-switch irregular network, "
      f"{len(topology.edges())} links")
print()

demand_rng = rng.spawn("demand")
BATCHES = 8
PER_BATCH = 30
rows = []
completed = []


def on_complete(session, ok):
    completed.append((session, ok))


for batch in range(BATCHES):
    completed.clear()
    launched = 0
    while launched < PER_BATCH:
        src = demand_rng.randint(0, topology.num_nodes - 1)
        dst = demand_rng.randint(0, topology.num_nodes - 1)
        if src == dst:
            continue
        rate = demand_rng.choice((20e6, 55e6, 120e6))
        protocol.establish(
            src, dst,
            BandwidthRequest(config.rate_to_cycles_per_round(rate)),
            on_complete,
        )
        launched += 1
    sim.run(5000)  # let every probe in the batch finish

    setup = RunningStats()
    searched = RunningStats()
    backtracks = RunningStats()
    accepted = 0
    for session, ok in completed:
        accepted += ok
        setup.add(session.setup_cycles)
        searched.add(session.links_searched)
        backtracks.add(session.backtracks)
    occupancy = sum(
        allocator.utilisation
        for router in network.routers
        for allocator in router.admission.outputs[: topology.degree(0)]
    )
    mean_util = sum(
        router.admission.outputs[p].utilisation
        for router in network.routers
        for p in range(topology.num_ports)
    ) / (topology.num_nodes * topology.num_ports)
    rows.append(
        [
            batch + 1,
            f"{mean_util:.2f}",
            f"{accepted}/{len(completed)}",
            setup.mean,
            setup.maximum,
            searched.mean,
            backtracks.mean,
        ]
    )

print(
    format_table(
        [
            "batch",
            "mean_link_util",
            "accepted",
            "setup_cycles(mean)",
            "setup_cycles(max)",
            "links_searched",
            "backtracks",
        ],
        rows,
        precision=1,
    )
)
print()
print("As links fill, probes backtrack more and establishment slows —")
print("the cost side of pipelined circuit switching's jitter guarantees.")
