#!/usr/bin/env python
"""Quickstart: one MMR router, a handful of CBR connections.

Builds the paper's 8x8 router (256 virtual channels per port, 1.24 Gbps
links, 128-bit flits), opens a few constant-bit-rate connections through
it, runs the cycle-level simulation, and prints the delay and jitter each
connection experienced at the switch.

Run:  python examples/quickstart.py
"""

from repro import (
    BandwidthRequest,
    BiasedPriority,
    GreedyPriorityScheduler,
    Router,
    RouterConfig,
    ServiceClass,
    Simulator,
)
from repro.traffic import CbrSource, rate_name

# The paper's evaluation configuration; round budgets off as in §5.1.
config = RouterConfig(enforce_round_budgets=False)
sim = Simulator()
router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)

print(f"MMR router: {config.num_ports}x{config.num_ports}, "
      f"{config.vcs_per_port} VCs/port, "
      f"flit cycle {config.flit_cycle_ns:.0f} ns")
print()

# (input port, output port, rate) — two connections share output link 2,
# so their flits will occasionally contend for the switch.
demands = [
    (0, 2, 120e6),
    (1, 2, 55e6),
    (3, 5, 20e6),
    (4, 7, 1.54e6),
]

sources = []
for connection_id, (input_port, output_port, rate) in enumerate(demands, start=1):
    request = BandwidthRequest(config.rate_to_cycles_per_round(rate))
    interarrival = config.rate_to_interarrival_cycles(rate)
    vc_index = router.open_connection(
        connection_id,
        input_port,
        output_port,
        request,
        service_class=ServiceClass.CBR,
        interarrival_cycles=interarrival,
    )
    if vc_index is None:
        raise SystemExit(f"admission refused connection {connection_id}")
    source = CbrSource(
        sim, router, connection_id, input_port, vc_index, rate, config,
        phase=connection_id * 3.0,
    )
    source.start()
    sources.append((connection_id, rate, source))
    print(f"connection {connection_id}: port {input_port} -> {output_port}, "
          f"{rate_name(rate)}, one flit every {interarrival:,.0f} cycles")

print()
CYCLES = 200_000
sim.run(CYCLES)

print(f"after {CYCLES:,} flit cycles "
      f"({config.cycles_to_us(CYCLES) / 1000:.1f} ms simulated):")
print()
header = f"{'connection':>10}  {'rate':>10}  {'flits':>7}  {'delay (cyc)':>11}  {'delay (us)':>10}  {'jitter (cyc)':>12}"
print(header)
print("-" * len(header))
for connection_id, rate, source in sources:
    stats = router.connection_stats[connection_id]
    print(
        f"{connection_id:>10}  {rate_name(rate):>10}  {stats.flits:>7}  "
        f"{stats.delay.mean:>11.2f}  "
        f"{config.cycles_to_us(stats.delay.mean):>10.3f}  "
        f"{stats.jitter.mean:>12.3f}"
    )

print()
print(f"switch utilisation: {router.utilisation():.1%} "
      f"(offered: {router.admission.offered_load():.1%})")
