#!/usr/bin/env python
"""Cluster/LAN network scenario: EPB establishment + adaptive best-effort.

Builds a 12-switch irregular cluster network (the MMR's target setting,
§1), establishes pipelined-circuit-switched connections with exhaustive
profitable backtracking, runs best-effort traffic under adaptive routing
with an up*/down* escape, then fails a link and shows re-establishment
around the failure.

Run:  python examples/cluster_network.py
"""

from repro import (
    BiasedPriority,
    ConnectionManager,
    Network,
    NetworkInterface,
    RouterConfig,
    SeededRng,
    Simulator,
    irregular,
)

rng = SeededRng(2026, "cluster")
topology = irregular(12, rng.spawn("topology"), mean_degree=3.0)
print(f"topology: {topology.num_nodes} switches, "
      f"{len(topology.edges())} links, router degree <= "
      f"{max(topology.degree(n) for n in range(12))}")
print("links:", topology.edges())
print()

config = RouterConfig(
    num_ports=topology.num_ports,
    vcs_per_port=64,
    round_factor=8,
    enforce_round_budgets=False,
)
sim = Simulator()
network = Network(topology, config, BiasedPriority(), sim, rng.spawn("network"))
manager = ConnectionManager(network)
interfaces = [
    NetworkInterface(network, manager, node, rng=rng.spawn(f"host{node}"))
    for node in range(topology.num_nodes)
]

# ---- establish multimedia connections -------------------------------------
demands = [
    (0, 7, 55e6),
    (3, 9, 20e6),
    (5, 1, 120e6),
    (10, 2, 10e6),
    (8, 4, 55e6),
    (11, 6, 2e6),
]
streams = []
for src, dst, rate in demands:
    stream = interfaces[src].open_cbr(dst, rate)
    if stream is None:
        print(f"  {src} -> {dst} at {rate/1e6:g} Mbps: REFUSED")
        continue
    probe = stream.connection.probe
    print(f"  {src} -> {dst} at {rate/1e6:g} Mbps: path {stream.connection.path}, "
          f"probe searched {probe.links_searched} links, "
          f"{probe.backtracks} backtracks, "
          f"setup {stream.connection.ready_at} cycles")
    streams.append((src, dst, stream))

print(f"\nestablishment: {manager.stats.established}/{manager.stats.attempts} "
      f"accepted, {manager.stats.links_searched} links probed in total")

# ---- best-effort chatter everywhere ------------------------------------------
be_rng = rng.spawn("besteffort")
be_sent = 0
for _ in range(300):
    src = be_rng.randint(0, 11)
    dst = be_rng.randint(0, 11)
    if src != dst:
        interfaces[src].send_best_effort(dst)
        be_sent += 1

sim.run(60_000)

print("\nafter 60k cycles:")
for src, dst, stream in streams:
    stats = interfaces[dst].end_to_end.get(stream.connection.connection_id)
    if stats is None or stats.flits == 0:
        print(f"  {src} -> {dst}: no flits yet")
        continue
    print(f"  {src} -> {dst}: {stats.flits} flits, end-to-end "
          f"{config.cycles_to_us(stats.delay.mean):.2f} us, "
          f"jitter {stats.jitter.mean:.3f} cycles")
packets = sum(ni.packets_received for ni in interfaces)
print(f"  best-effort packets delivered: {packets}/{be_sent} "
      f"(blocked-and-retried hops: "
      f"{network.stats.get_counter('be_blocked'):.0f})")

# ---- link failure and re-establishment ----------------------------------------
victim_src, victim_dst, victim = streams[0]
path = victim.connection.path
failed_link = (path[0], path[1])
print(f"\nfailing link {failed_link} (used by connection "
      f"{victim.connection.connection_id})...")

# Drain, tear down the affected connection, remove the link, re-establish.
sim.run(5_000)
interfaces[victim_src].close(victim)
topology.remove_link(*failed_link)
replacement = interfaces[victim_src].open_cbr(victim_dst, 55e6)
if replacement is None:
    print("  no alternative path with capacity — connection lost")
else:
    print(f"  re-established over {replacement.connection.path} "
          f"(old path {path})")
    assert replacement.connection.path != path
    sim.run(30_000)
    stats = interfaces[victim_dst].end_to_end[replacement.connection.connection_id]
    print(f"  {stats.flits} flits on the new path, end-to-end "
          f"{config.cycles_to_us(stats.delay.mean):.2f} us")
