#!/usr/bin/env python
"""One-command re-run of the paper's evaluation (§5, Figures 3-5).

Runs the single-router CBR experiment grid — jitter and delay vs offered
load for fixed and biased priorities at several candidate-set sizes, plus
the four-way comparison against the DEC/Autonet scheduler and the perfect
switch — and prints the figure tables.

By default a reduced grid runs in a few minutes; pass ``--full`` for the
paper-scale 100k-cycle measurement windows (slow on one core), and
``--loads 0.5,0.9`` / ``--candidates 2,8`` to reshape the grid.

Run:  python examples/paper_experiment.py [--full]
"""

import argparse

from repro import figure3, figure4, figure5
from repro.harness.report import ascii_plot


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale windows (20k warm-up + 100k measured cycles)",
    )
    parser.add_argument(
        "--loads", default="0.3,0.6,0.8,0.95",
        help="comma-separated offered loads",
    )
    parser.add_argument(
        "--candidates", default="2,8",
        help="comma-separated candidate-set sizes for figures 3-4",
    )
    args = parser.parse_args()
    loads = tuple(float(x) for x in args.loads.split(","))
    candidates = tuple(int(x) for x in args.candidates.split(","))

    print("=" * 72)
    print("Figure 3 — jitter vs offered load (flit cycles)")
    print("=" * 72)
    fig3 = figure3(loads=loads, candidates=candidates, full=args.full)
    print(fig3.table())
    print()

    print("=" * 72)
    print("Figure 4 — delay vs offered load (microseconds)")
    print("=" * 72)
    fig4 = figure4(loads=loads, candidates=candidates, full=args.full)
    print(fig4.table())
    print()
    print(ascii_plot(fig4.xs, fig4.series, logy=True))
    print()

    print("=" * 72)
    print("Figure 5 — biased vs fixed vs DEC vs perfect (8 candidates)")
    print("=" * 72)
    delay, jitter = figure5(loads=loads, full=args.full)
    print(delay.table())
    print()
    print(jitter.table())
    print()
    print("Expected shape (paper §5.2): biased < fixed on both metrics at")
    print("every load below saturation; more candidates help; the biased")
    print("curve closely tracks the perfect switch; DEC sits between.")


if __name__ == "__main__":
    main()
