#!/usr/bin/env python
"""Working with video frame traces (DESIGN.md's MPEG-trace substitution).

Shows the trace workflow end to end: synthesise a statistically-matched
MPEG trace from a profile, save it to the text format, reload it, inspect
its rate statistics, and play it through a router while comparing the
trace-driven stream's delivery against its admission contract.

Run:  python examples/trace_tools.py
"""

import io

from repro import (
    BandwidthRequest,
    BiasedPriority,
    GreedyPriorityScheduler,
    Router,
    RouterConfig,
    SeededRng,
    ServiceClass,
    Simulator,
)
from repro.traffic import FrameTrace, MpegProfile, TraceVbrSource

rng = SeededRng(314, "traces")

# ---- synthesise -------------------------------------------------------------
profile = MpegProfile(mean_rate_bps=20e6, frame_rate_hz=1500.0, sigma=0.3)
trace = FrameTrace.synthesise(profile, num_frames=120, rng=rng.spawn("synth"))
print(f"synthesised {len(trace)} frames "
      f"({', '.join(trace.kinds())} kinds)")
print(f"  mean rate: {trace.mean_rate_bps / 1e6:.1f} Mbps "
      f"(profile: {profile.mean_rate_bps / 1e6:.0f})")
print(f"  1-frame peak rate: {trace.peak_rate_bps(1) / 1e6:.1f} Mbps")
print(f"  12-frame (GOP) peak rate: {trace.peak_rate_bps(12) / 1e6:.1f} Mbps")

# ---- save / reload ---------------------------------------------------------------
buffer = io.StringIO()
trace.dump(buffer)
text = buffer.getvalue()
print(f"\ntrace file format ({len(text.splitlines())} lines):")
for line in text.splitlines()[:5]:
    print(f"  {line}")
print("  ...")
reloaded = FrameTrace.parse(io.StringIO(text))
assert reloaded.frames == trace.frames
print("reload round-trip: OK")

# ---- play through a router -----------------------------------------------------------
config = RouterConfig(enforce_round_budgets=True, vbr_concurrency_factor=2.0)
sim = Simulator()
router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)
permanent = config.rate_to_cycles_per_round(trace.mean_rate_bps)
peak = config.rate_to_cycles_per_round(trace.peak_rate_bps(1))
request = BandwidthRequest(permanent, max(peak, permanent))
vc_index = router.open_connection(
    1, 0, 5, request,
    service_class=ServiceClass.VBR,
    interarrival_cycles=config.rate_to_interarrival_cycles(trace.mean_rate_bps),
)
assert vc_index is not None
source = TraceVbrSource(sim, router, 1, 0, vc_index, trace, config)
source.start()

CYCLES = 200_000
sim.run(CYCLES)
stats = router.connection_stats[1]
delivered_bits = stats.flits * config.flit_size_bits
seconds = CYCLES * config.flit_cycle_seconds
print(f"\nplayed {source.frames_played} frames over "
      f"{config.cycles_to_us(CYCLES) / 1000:.1f} ms:")
print(f"  admission contract: permanent {permanent} + "
      f"peak {max(peak, permanent)} cycles/round")
print(f"  delivered: {stats.flits} flits = "
      f"{delivered_bits / seconds / 1e6:.1f} Mbps")
print(f"  mean flit delay: {config.cycles_to_us(stats.delay.mean):.2f} us, "
      f"jitter: {stats.jitter.mean:.2f} cycles")
print(f"  interface backlog peak: {source.backlog} flits at end")
