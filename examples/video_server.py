#!/usr/bin/env python
"""Video-on-demand server scenario: hybrid multimedia traffic (paper §2).

One MMR router fronts a video server cluster.  Through it flow:

* MPEG-like VBR video streams (the bulk of the bandwidth) — admitted with
  permanent + peak registers and a concurrency factor,
* CBR audio channels — admitted against the round budget,
* best-effort NFS-like request/response packets — no reservation, served
  from leftover bandwidth, and
* short control packets riding above everything.

The example shows admission control refusing streams once the peak budget
is exhausted, and per-class QoS after a multi-millisecond run: video and
audio keep their contracts while best-effort sees whatever remains.

Run:  python examples/video_server.py
"""

from repro import (
    BandwidthRequest,
    BiasedPriority,
    GreedyPriorityScheduler,
    Router,
    RouterConfig,
    ServiceClass,
    SeededRng,
    Simulator,
)
from repro.traffic import CbrSource, MpegProfile, PacketSource, VbrSource

# Full QoS machinery on: round budgets enforced, 10% of each round held
# back so best-effort traffic cannot starve (§4.2).
config = RouterConfig(
    enforce_round_budgets=True,
    best_effort_reserved_fraction=0.10,
    vbr_concurrency_factor=1.5,
)
sim = Simulator()
rng = SeededRng(42, "video-server")
router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)

print("video server front-end:", config.num_ports, "ports,",
      f"round = {config.round_length} flit cycles,",
      f"VBR concurrency factor = {config.vbr_concurrency_factor}")
print()

# ---- admit video streams until the peak registers refuse -----------------
video_profile = MpegProfile(mean_rate_bps=20e6, frame_rate_hz=1500.0, sigma=0.3)
peak_rate = video_profile.peak_rate_bps()
video_request = BandwidthRequest(
    config.rate_to_cycles_per_round(video_profile.mean_rate_bps),
    config.rate_to_cycles_per_round(peak_rate),
)

videos = []
connection_id = 0
refused = 0
for attempt in range(200):
    connection_id += 1
    input_port = attempt % (config.num_ports - 1)
    output_port = (attempt * 3 + 1) % config.num_ports
    vc_index = router.open_connection(
        connection_id,
        input_port,
        output_port,
        video_request,
        service_class=ServiceClass.VBR,
        interarrival_cycles=config.rate_to_interarrival_cycles(
            video_profile.mean_rate_bps
        ),
        static_priority=rng.random(),
    )
    if vc_index is None:
        refused += 1
        continue
    source = VbrSource(
        sim, router, connection_id, input_port, vc_index,
        video_profile, config, rng.spawn(f"video{connection_id}"),
        phase=rng.uniform(0, 500),
    )
    source.abort_backlog_frames = 4.0  # §4.3 frame-abort policy
    source.start()
    videos.append((connection_id, source))

print(f"admitted {len(videos)} x 20 Mbps MPEG streams "
      f"(peak estimate {peak_rate / 1e6:.0f} Mbps each); "
      f"{refused} refused by the VBR peak registers")

# ---- CBR audio channels ---------------------------------------------------
audios = []
for i in range(24):
    connection_id += 1
    input_port = i % config.num_ports
    output_port = (i * 5 + 2) % config.num_ports
    rate = 128e3
    request = BandwidthRequest(config.rate_to_cycles_per_round(rate))
    vc_index = router.open_connection(
        connection_id, input_port, output_port, request,
        service_class=ServiceClass.CBR,
        interarrival_cycles=config.rate_to_interarrival_cycles(rate),
    )
    if vc_index is None:
        continue
    source = CbrSource(
        sim, router, connection_id, input_port, vc_index, rate, config,
        phase=rng.uniform(0, 1000),
    )
    source.start()
    audios.append((connection_id, source))
print(f"admitted {len(audios)} x 128 Kbps CBR audio channels")

# ---- best-effort and control packets ----------------------------------------
best_effort_sources = []
for port in range(config.num_ports):
    connection_id += 1
    source = PacketSource(
        sim, router, connection_id, port,
        mean_interarrival_cycles=40.0,
        rng=rng.spawn(f"be{port}"),
        config=config,
    )
    source.start()
    best_effort_sources.append((connection_id, source))

connection_id += 1
control = PacketSource(
    sim, router, connection_id, 0,
    mean_interarrival_cycles=2000.0,
    rng=rng.spawn("control"),
    config=config,
    service_class=ServiceClass.CONTROL,
)
control.start()
control_id = connection_id
print(f"{len(best_effort_sources)} best-effort sources "
      "(Poisson, ~3% load each) + 1 control source")
print()

CYCLES = 150_000
sim.run(CYCLES)
print(f"ran {CYCLES:,} flit cycles ({config.cycles_to_us(CYCLES) / 1000:.1f} ms)")
print()


def class_report(name, ids):
    delays, jitters, flits = [], [], 0
    for cid in ids:
        stats = router.connection_stats.get(cid)
        if stats is None or stats.flits == 0:
            continue
        flits += stats.flits
        delays.append(stats.delay.mean)
        jitters.append(stats.jitter.mean if stats.jitter.count else 0.0)
    mean_delay = sum(delays) / len(delays) if delays else 0.0
    mean_jitter = sum(jitters) / len(jitters) if jitters else 0.0
    print(f"{name:>12}: {flits:>8} flits, mean delay "
          f"{config.cycles_to_us(mean_delay):7.3f} us, mean jitter "
          f"{mean_jitter:7.3f} cycles")


class_report("video (VBR)", [cid for cid, _ in videos])
class_report("audio (CBR)", [cid for cid, _ in audios])
class_report("best-effort", [cid for cid, _ in best_effort_sources])
class_report("control", [control_id])

aborted = sum(source.frames_aborted for _, source in videos)
generated = sum(source.frames_generated for _, source in videos)
print()
print(f"video frames: {generated} generated, {aborted} aborted at the "
      "interface (back-pressure deadline policy)")
print(f"switch utilisation: {router.utilisation():.1%}; "
      f"reserved-for-best-effort fraction: "
      f"{config.best_effort_reserved_fraction:.0%}")
print(f"control cut-throughs: "
      f"{router.stats.get_counter('immediate_cut_throughs'):.0f}")
