#!/usr/bin/env python
"""Dynamic bandwidth and priority management over a live connection (§4.3).

"Using control words along a connection we can dynamically vary the
bandwidth requirements of a connection ... The complex bandwidth control
functions can be implemented in the network interfaces or source CPUs."

This example opens a video connection across a small mesh at 10 Mbps,
then — without tearing it down — renegotiates it up to 40 Mbps (a user
switched to a higher quality tier), shows a renegotiation being *refused*
when a competing connection holds the capacity, and finally demotes the
connection's scheduling priority.

Run:  python examples/dynamic_bandwidth.py
"""

from repro import (
    BiasedPriority,
    ConnectionManager,
    Network,
    NetworkInterface,
    RouterConfig,
    SeededRng,
    Simulator,
    mesh,
)

rng = SeededRng(7, "dynamic")
topology = mesh(2, 2)
config = RouterConfig(
    num_ports=topology.num_ports,
    vcs_per_port=64,
    round_factor=8,
    enforce_round_budgets=False,
)
sim = Simulator()
network = Network(topology, config, BiasedPriority(), sim, rng.spawn("net"))
manager = ConnectionManager(network)
interfaces = [
    NetworkInterface(network, manager, n, rng=rng.spawn(f"ni{n}"))
    for n in range(4)
]


def measured_rate(stream, window):
    """Delivered Mbps over the last ``window`` cycles."""
    stats = interfaces[3].end_to_end.get(stream.connection.connection_id)
    before = stats.flits if stats else 0
    sim.run(window)
    stats = interfaces[3].end_to_end[stream.connection.connection_id]
    flits = stats.flits - before
    seconds = window * config.flit_cycle_seconds
    return flits * config.flit_size_bits / seconds / 1e6


print("phase 1: open a 10 Mbps stream 0 -> 3")
stream = interfaces[0].open_cbr(3, 10e6)
assert stream is not None
print(f"  path {stream.connection.path}, allocation "
      f"{stream.connection.request.permanent_cycles} cycles/round")
print(f"  delivered: {measured_rate(stream, 60_000):.1f} Mbps")

print()
print("phase 2: control word SET_BANDWIDTH -> 40 Mbps")
ok = interfaces[0].renegotiate_bandwidth(stream, 40e6)
print(f"  renegotiation {'accepted' if ok else 'REFUSED'}; allocation now "
      f"{stream.connection.request.permanent_cycles} cycles/round")
print(f"  delivered: {measured_rate(stream, 60_000):.1f} Mbps")

print()
print("phase 3: a competitor fills the remaining capacity on the path")
hop = stream.connection.path[0]
out_port = stream.connection.ports[0]
free_cycles = (
    network.routers[hop].admission.outputs[out_port].allocatable_cycles
    - network.routers[hop].admission.outputs[out_port].allocated_cycles
)
competitor_rate = free_cycles / config.round_length * config.link_rate_bps * 0.98
competitor = interfaces[0].open_cbr(3, competitor_rate)
print(f"  competitor admitted at {competitor_rate / 1e6:.0f} Mbps"
      if competitor else "  competitor refused")

wanted = 200e6
ok = interfaces[0].renegotiate_bandwidth(stream, wanted)
print(f"  SET_BANDWIDTH -> {wanted / 1e6:.0f} Mbps: "
      f"{'accepted' if ok else 'REFUSED (capacity held by competitor)'}")
print(f"  stream still delivers: {measured_rate(stream, 60_000):.1f} Mbps "
      "(old contract intact)")

print()
print("phase 4: control word SET_PRIORITY (demote to background quality)")
interfaces[0].set_priority(stream, -1.0)
vc = network.routers[stream.connection.path[0]].input_ports[
    stream.connection.entry_ports[0]
].vcs[stream.connection.vcs[0]]
print(f"  per-hop VC priority now {vc.static_priority}")

print()
print(f"total renegotiations applied by routers: "
      f"{sum(r.stats.get_counter('renegotiations') for r in network.routers):.0f}")
