"""Tests for the streaming statistics accumulators."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    ConnectionStats,
    Histogram,
    RunningStats,
    StatsRegistry,
    TimeWeightedStats,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_sample(self):
        s = RunningStats()
        s.add(4.0)
        assert s.mean == 4.0
        assert s.variance == 0.0
        assert s.minimum == 4.0
        assert s.maximum == 4.0

    def test_known_values(self):
        s = RunningStats()
        s.extend([2.0, 4.0, 6.0])
        assert s.mean == pytest.approx(4.0)
        assert s.variance == pytest.approx(8.0 / 3.0)
        assert s.total == pytest.approx(12.0)

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_matches_direct_computation(self, values):
        s = RunningStats()
        s.extend(values)
        mean = sum(values) / len(values)
        assert s.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert s.variance == pytest.approx(var, rel=1e-6, abs=1e-4)
        assert s.minimum == min(values)
        assert s.maximum == max(values)
        assert s.count == len(values)

    @given(
        st.lists(finite_floats, min_size=0, max_size=100),
        st.lists(finite_floats, min_size=0, max_size=100),
    )
    def test_merge_equals_concatenation(self, left, right):
        merged = RunningStats()
        merged.extend(left)
        other = RunningStats()
        other.extend(right)
        merged.merge(other)
        direct = RunningStats()
        direct.extend(left + right)
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(direct.variance, rel=1e-6, abs=1e-4)

    def test_merge_empty_into_full(self):
        s = RunningStats()
        s.extend([1.0, 2.0])
        s.merge(RunningStats())
        assert s.count == 2
        assert s.mean == pytest.approx(1.5)

    def test_stdev(self):
        s = RunningStats()
        s.extend([1.0, 3.0])
        assert s.stdev == pytest.approx(1.0)

    def test_repr(self):
        s = RunningStats()
        s.add(1.0)
        assert "count=1" in repr(s)


class TestHistogram:
    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            Histogram(1.0, 1.0, 4)

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, 0)

    def test_binning(self):
        h = Histogram(0.0, 10.0, 10)
        h.add(0.5)
        h.add(9.5)
        assert h.counts[0] == 1
        assert h.counts[9] == 1

    def test_underflow_overflow(self):
        h = Histogram(0.0, 1.0, 2)
        h.add(-0.1)
        h.add(1.0)  # top edge is exclusive
        assert h.underflow == 1
        assert h.overflow == 1
        assert h.total == 2

    def test_weighted_add(self):
        h = Histogram(0.0, 1.0, 1)
        h.add(0.5, weight=7)
        assert h.counts[0] == 7

    def test_quantile_empty(self):
        h = Histogram(0.0, 1.0, 4)
        assert h.quantile(0.5) == 0.0

    def test_quantile_bounds_validated(self):
        h = Histogram(0.0, 1.0, 4)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_quantile_median_of_uniform(self):
        h = Histogram(0.0, 100.0, 100)
        for i in range(100):
            h.add(i + 0.5)
        assert h.quantile(0.5) == pytest.approx(50.0, abs=1.5)

    @given(st.lists(st.floats(0.0, 99.999), min_size=1, max_size=300))
    def test_quantile_monotone(self, values):
        h = Histogram(0.0, 100.0, 20)
        for v in values:
            h.add(v)
        qs = [h.quantile(q / 10) for q in range(11)]
        assert all(a <= b + 1e-9 for a, b in zip(qs, qs[1:]))

    def test_nonzero_bins(self):
        h = Histogram(0.0, 4.0, 4)
        h.add(2.5)
        assert h.nonzero_bins() == [(2.0, 1)]

    def test_quantile_extremes_span_the_data(self):
        h = Histogram(0.0, 10.0, 10)
        h.add(2.5)
        h.add(7.5)
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)
        assert h.quantile(1.0) <= h.high
        assert h.quantile(0.0) >= h.low

    def test_quantile_all_underflow_clamps_to_low(self):
        h = Histogram(0.0, 1.0, 4)
        for _ in range(5):
            h.add(-3.0)
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == 0.0

    def test_quantile_all_overflow_clamps_to_high(self):
        h = Histogram(0.0, 1.0, 4)
        for _ in range(5):
            h.add(2.0)
        # No bin ever reaches the target, so every quantile reports the
        # top edge — the closest value the histogram can attribute.
        assert h.quantile(0.5) == h.high
        assert h.quantile(1.0) == h.high

    def test_quantile_single_bin_interpolates(self):
        h = Histogram(0.0, 1.0, 1)
        for _ in range(4):
            h.add(0.5)
        assert 0.0 <= h.quantile(0.25) <= 1.0
        assert h.quantile(0.25) == pytest.approx(0.25)
        assert h.quantile(1.0) == pytest.approx(1.0)


class TestTimeWeightedStats:
    def test_constant_signal(self):
        t = TimeWeightedStats(initial_value=3.0)
        t.finish(10.0)
        assert t.mean == pytest.approx(3.0)

    def test_step_signal(self):
        t = TimeWeightedStats()
        t.record(5.0, 10.0)  # value 0 for 5 units
        t.finish(10.0)  # value 10 for 5 units
        assert t.mean == pytest.approx(5.0)

    def test_rejects_time_reversal(self):
        t = TimeWeightedStats()
        t.record(5.0, 1.0)
        with pytest.raises(ValueError):
            t.record(4.0, 2.0)

    def test_empty_window(self):
        t = TimeWeightedStats()
        assert t.mean == 0.0

    def test_finish_twice_at_same_time_is_idempotent(self):
        t = TimeWeightedStats(initial_value=4.0)
        t.finish(10.0)
        first = t.mean
        t.finish(10.0)  # zero-length extension: mean must not move
        assert t.mean == pytest.approx(first) == pytest.approx(4.0)

    def test_finish_then_later_finish_extends_the_window(self):
        t = TimeWeightedStats()
        t.record(5.0, 10.0)
        t.finish(10.0)
        assert t.mean == pytest.approx(5.0)
        t.finish(20.0)  # the last value (10.0) holds for 10 more units
        assert t.mean == pytest.approx((0.0 * 5 + 10.0 * 15) / 20)

    def test_finish_rejects_time_reversal(self):
        t = TimeWeightedStats()
        t.record(5.0, 1.0)
        with pytest.raises(ValueError):
            t.finish(4.0)


class TestConnectionStats:
    def test_first_flit_has_no_jitter(self):
        c = ConnectionStats()
        c.record_flit(5.0)
        assert c.flits == 1
        assert c.jitter.count == 0

    def test_jitter_is_abs_successive_difference(self):
        c = ConnectionStats()
        c.record_flit(5.0)
        c.record_flit(8.0)
        c.record_flit(2.0)
        assert c.jitter.count == 2
        assert c.jitter.mean == pytest.approx((3.0 + 6.0) / 2)

    def test_constant_delay_zero_jitter(self):
        c = ConnectionStats()
        for _ in range(10):
            c.record_flit(4.0)
        assert c.jitter.mean == 0.0
        assert c.delay.mean == pytest.approx(4.0)

    @given(st.lists(st.floats(0, 1e5), min_size=2, max_size=100))
    def test_jitter_matches_definition(self, delays):
        c = ConnectionStats()
        for d in delays:
            c.record_flit(d)
        expected = [abs(b - a) for a, b in zip(delays, delays[1:])]
        assert c.jitter.count == len(expected)
        assert c.jitter.mean == pytest.approx(
            sum(expected) / len(expected), rel=1e-9, abs=1e-9
        )


class TestStatsRegistry:
    def test_counter_accumulates(self):
        r = StatsRegistry()
        r.counter("x")
        r.counter("x", 2.5)
        assert r.get_counter("x") == 3.5

    def test_missing_counter_is_zero(self):
        assert StatsRegistry().get_counter("nope") == 0.0

    def test_observe_series(self):
        r = StatsRegistry()
        r.observe("d", 1.0)
        r.observe("d", 3.0)
        assert r.get_series("d").mean == pytest.approx(2.0)

    def test_missing_series_is_empty(self):
        assert StatsRegistry().get_series("nope").count == 0

    def test_get_series_registers_on_access(self):
        r = StatsRegistry()
        series = r.get_series("late")
        # Samples observed after the lookup are visible through the
        # handle the caller already holds (it used to be detached).
        r.observe("late", 7.0)
        assert series.count == 1
        assert series.mean == pytest.approx(7.0)
        assert r.get_series("late") is series

    def test_get_series_handle_feeds_the_registry(self):
        r = StatsRegistry()
        r.get_series("fed").add(3.0)
        assert r.snapshot()["fed.count"] == 1

    def test_snapshot(self):
        r = StatsRegistry()
        r.counter("c", 2)
        r.observe("s", 4.0)
        snap = r.snapshot()
        assert snap["c"] == 2
        assert snap["s.mean"] == 4.0
        assert snap["s.count"] == 1
