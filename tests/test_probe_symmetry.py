"""Resource-symmetry property tests for the probe protocol.

Establishment and teardown walk the same per-hop allocate/release code in
opposite directions; renegotiation swaps contracts in place; every
failure branch (mid-path dead end, destination-egress race, source-VC
race) must unwind exactly what it committed.  These tests churn sessions
through all of those paths and assert that every router's admission
registers, VC free lists and RAU mapping stores return to their
pre-churn snapshot — the same invariant the churn harness audits after
a full run.
"""

import pytest

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.core.virtual_channel import ServiceClass
from repro.network.network import Network
from repro.network.probe_protocol import CONTROL_HOP_CYCLES, ProbeProtocol
from repro.network.topology import Topology, mesh
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng


def build(topo=None, vcs=8):
    topo = topo or mesh(3, 3)
    config = RouterConfig(
        num_ports=topo.num_ports,
        vcs_per_port=vcs,
        round_factor=2,
        enforce_round_budgets=False,
    )
    sim = Simulator()
    network = Network(topo, config, BiasedPriority(), sim, SeededRng(6, "sym"))
    return network, ProbeProtocol(network), sim, config


def snapshot(network, topo, config):
    """Mirror of ChurnWorkload.resource_snapshot for a bare network."""
    state = {}
    for node in range(topo.num_nodes):
        router = network.routers[node]
        for port in range(config.num_ports):
            inp = router.admission.inputs[port]
            out = router.admission.outputs[port]
            state[f"r{node}.p{port}.admission"] = (
                inp.allocated_cycles,
                inp.peak_cycles,
                inp.active_connections,
                out.allocated_cycles,
                out.peak_cycles,
                out.active_connections,
            )
            state[f"r{node}.p{port}.free_vcs"] = router.input_ports[
                port
            ].free_vc_count()
        state[f"r{node}.rau"] = len(router.rau.mappings)
    return state


class Recorder:
    def __init__(self):
        self.results = []

    def __call__(self, session, established):
        self.results.append((session, established))


def teardown_and_forget(protocol, sim, sessions):
    """Tear sessions down (staggered) and forget them once complete."""
    for session in sessions:
        protocol.teardown(session, protocol_forgetter(protocol))
    longest = max((len(s.reservations) for s in sessions), default=0)
    sim.run(CONTROL_HOP_CYCLES * (longest + 2) + 5)
    for session in sessions:
        assert not session.established


def protocol_forgetter(protocol):
    def _forget(session, _established):
        protocol.forget(session)

    return _forget


class TestRandomizedChurnSymmetry:
    def test_randomized_cycles_return_to_baseline(self):
        """N rounds of mixed CBR/VBR establish/fail/teardown churn leave
        every router register exactly at its pre-churn value."""
        network, protocol, sim, config = build()
        topo = network.topology
        baseline = snapshot(network, topo, config)
        rng = SeededRng(42, "churn-sym")
        cap = config.round_length  # 16: requests of 17 fail at the source
        done = Recorder()
        alive = []
        torn = 0
        seen = 0
        for _ in range(6):
            for _ in range(6):
                src = rng.randint(0, topo.num_nodes - 1)
                dst = rng.randint(0, topo.num_nodes - 2)
                if dst >= src:
                    dst += 1
                if rng.random() < 0.4:
                    permanent = rng.choice((2, 4))
                    request = BandwidthRequest(permanent, permanent * 2)
                    service = ServiceClass.VBR
                else:
                    request = BandwidthRequest(rng.choice((2, 4, 9, cap + 1)))
                    service = ServiceClass.CBR
                protocol.establish(
                    src, dst, request, done, service_class=service
                )
            sim.run(600)
            new = done.results[seen:]
            seen = len(done.results)
            assert len(new) == 6  # every attempt resolved within the round
            for session, ok in new:
                if ok:
                    alive.append(session)
                else:
                    protocol.forget(session)
            # Tear down roughly half of the live population.
            victims = [s for s in alive if rng.random() < 0.5]
            alive = [s for s in alive if s not in victims]
            if victims:
                teardown_and_forget(protocol, sim, victims)
                torn += len(victims)
        if alive:
            teardown_and_forget(protocol, sim, alive)
            torn += len(alive)
        sim.run(100)
        assert torn > 0  # the property test actually exercised teardown
        assert protocol.teardowns_completed == torn
        assert not protocol.sessions
        assert snapshot(network, topo, config) == baseline


class TestAckFailureBranches:
    def test_destination_egress_race_unwinds_fully(self):
        """The probe wins the path but loses the destination host-egress
        race; the ack-side failure must unwind every hop."""
        topo = Topology(3, [(0, 1), (1, 2)])
        network, protocol, sim, config = build(topo=topo)
        baseline = snapshot(network, topo, config)
        blocker = BandwidthRequest(config.round_length)
        egress = network.routers[2].admission.outputs[topo.host_port(2)]
        assert egress.allocate(blocker)
        done = Recorder()
        session = protocol.establish(0, 2, BandwidthRequest(4), done)
        sim.run(200)
        assert done.results == [(session, False)]
        assert not session.established
        assert session.backtracks >= 1  # unwound hop by hop, not zeroed
        egress.release(blocker)
        protocol.forget(session)
        assert snapshot(network, topo, config) == baseline

    def test_source_vc_race_releases_destination_egress(self):
        """Both source host VCs vanish between probe launch and ack
        arrival; the ack must give back the destination egress it had
        just claimed, then unwind the whole path."""
        topo = Topology(3, [(0, 1), (1, 2)])
        network, protocol, sim, config = build(topo=topo, vcs=2)
        baseline = snapshot(network, topo, config)
        done = Recorder()
        session = protocol.establish(0, 2, BandwidthRequest(2), done)
        router0 = network.routers[0]
        host = topo.host_port(0)
        stolen = [
            router0.open_packet_vc(host, 0, ServiceClass.BEST_EFFORT, 900 + i)
            for i in range(2)
        ]
        assert all(idx is not None for idx in stolen)
        sim.run(200)
        assert done.results == [(session, False)]
        dest_egress = network.routers[2].admission.outputs[topo.host_port(2)]
        assert dest_egress.allocated_cycles == 0
        assert dest_egress.active_connections == 0
        for idx in stolen:
            router0._release_packet_vc(router0.input_ports[host].vcs[idx])
        protocol.forget(session)
        assert snapshot(network, topo, config) == baseline

    def test_source_input_admission_race_releases_destination_egress(self):
        """The source host-input *bandwidth* fills while the probe is in
        flight (a VC is still free): the ack's allocate fails and must
        release the destination egress before backtracking."""
        topo = Topology(3, [(0, 1), (1, 2)])
        network, protocol, sim, config = build(topo=topo)
        baseline = snapshot(network, topo, config)
        done = Recorder()
        session = protocol.establish(0, 2, BandwidthRequest(4), done)
        blocker = BandwidthRequest(config.round_length)
        ingress = network.routers[0].admission.inputs[topo.host_port(0)]
        assert ingress.allocate(blocker)
        sim.run(200)
        assert done.results == [(session, False)]
        dest_egress = network.routers[2].admission.outputs[topo.host_port(2)]
        assert dest_egress.allocated_cycles == 0
        ingress.release(blocker)
        protocol.forget(session)
        assert snapshot(network, topo, config) == baseline


class TestRenegotiationSymmetry:
    def test_refused_renegotiation_rolls_back_applied_hops(self):
        """A raise NACKed at hop 2 must restore hop 1's old contract —
        and the eventual teardowns still balance to baseline."""
        topo = Topology(3, [(0, 1), (1, 2)])
        network, protocol, sim, config = build(topo=topo)
        baseline = snapshot(network, topo, config)
        done = Recorder()
        cap = config.round_length  # 16
        contender = protocol.establish(1, 2, BandwidthRequest(6), done)
        sim.run(100)
        session = protocol.establish(0, 2, BandwidthRequest(8), done)
        sim.run(200)
        assert contender.established and session.established
        # Link 1->2 carries 6 + 8 = 14; raising the session to 11 needs
        # 17 there.  Hop 0 (all alone on link 0->1) accepts first, so the
        # refusal at hop 1 exercises the rollback path.
        out_0_to_1 = network.routers[0].admission.outputs[topo.port_of(0, 1)]
        assert out_0_to_1.allocated_cycles == 8
        assert not protocol.renegotiate(session, BandwidthRequest(11))
        assert protocol.renegotiations_refused == 1
        assert session.request.permanent_cycles == 8  # contract unchanged
        assert out_0_to_1.allocated_cycles == 8  # hop 0 rolled back
        out_1_to_2 = network.routers[1].admission.outputs[topo.port_of(1, 2)]
        assert out_1_to_2.allocated_cycles == 14
        teardown_and_forget(protocol, sim, [session, contender])
        assert not protocol.sessions
        assert snapshot(network, topo, config) == baseline

    def test_applied_renegotiation_still_tears_down_to_baseline(self):
        """A successful downgrade re-prices every hop; teardown releases
        the *new* contract and the registers return to baseline."""
        topo = Topology(3, [(0, 1), (1, 2)])
        network, protocol, sim, config = build(topo=topo)
        baseline = snapshot(network, topo, config)
        done = Recorder()
        session = protocol.establish(0, 2, BandwidthRequest(8), done)
        sim.run(200)
        assert session.established
        new_pacing = 4.0
        assert protocol.renegotiate(
            session, BandwidthRequest(4), interarrival_cycles=new_pacing
        )
        assert protocol.renegotiations_applied == 1
        assert session.request.permanent_cycles == 4
        out_0_to_1 = network.routers[0].admission.outputs[topo.port_of(0, 1)]
        assert out_0_to_1.allocated_cycles == 4
        # The pacing term the biased priority consults follows the new
        # contract on every hop.
        for i, node in enumerate(session.path):
            vc = network.routers[node].input_ports[session.entry_ports[i]].vcs[
                session.vcs[i]
            ]
            assert vc.interarrival_cycles == pytest.approx(new_pacing)
        teardown_and_forget(protocol, sim, [session])
        assert snapshot(network, topo, config) == baseline

    def test_renegotiate_unestablished_rejected(self):
        network, protocol, sim, config = build()
        done = Recorder()
        session = protocol.establish(0, 8, BandwidthRequest(4), done)
        with pytest.raises(RuntimeError):
            protocol.renegotiate(session, BandwidthRequest(2))


class TestForget:
    def test_forget_in_flight_rejected(self):
        network, protocol, sim, config = build()
        session = protocol.establish(0, 8, BandwidthRequest(4), Recorder())
        with pytest.raises(RuntimeError):
            protocol.forget(session)

    def test_forget_established_rejected(self):
        network, protocol, sim, config = build()
        session = protocol.establish(0, 8, BandwidthRequest(4), Recorder())
        sim.run(200)
        assert session.established
        with pytest.raises(RuntimeError):
            protocol.forget(session)

    def test_forget_drops_failed_session(self):
        topo = Topology(2, [(0, 1)])
        network, protocol, sim, config = build(topo=topo, vcs=2)
        done = Recorder()
        cap = config.round_length
        protocol.establish(0, 1, BandwidthRequest(cap), done)
        sim.run(100)
        failed = protocol.establish(0, 1, BandwidthRequest(cap), done)
        sim.run(100)
        assert not failed.established
        assert failed.session_id in protocol.sessions
        protocol.forget(failed)
        assert failed.session_id not in protocol.sessions
