"""Tests for the Router top level: connection lifecycle and the flit path."""

import pytest

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.flit import Flit, FlitType
from repro.core.priority import BiasedPriority
from repro.core.router import Router
from repro.core.switch_scheduler import (
    GreedyPriorityScheduler,
    PerfectSwitchScheduler,
)
from repro.core.virtual_channel import ServiceClass
from repro.sim.engine import Simulator


def small_config(**overrides):
    base = dict(
        num_ports=4,
        vcs_per_port=8,
        vc_buffer_flits=4,
        enforce_round_budgets=False,
    )
    base.update(overrides)
    return RouterConfig(**base)


def make_router(config=None, scheduler=None, **router_kwargs):
    config = config or small_config()
    sim = Simulator()
    router = Router(
        config,
        BiasedPriority(),
        scheduler or GreedyPriorityScheduler(),
        sim,
        checked=True,
        **router_kwargs,
    )
    return router, sim


def open_cbr(router, connection_id=1, input_port=0, output_port=1, cycles=4):
    return router.open_connection(
        connection_id,
        input_port,
        output_port,
        BandwidthRequest(cycles),
        service_class=ServiceClass.CBR,
        interarrival_cycles=10.0,
    )


def data_flit(connection_id=1, created=0, **kwargs):
    return Flit(FlitType.DATA, connection_id=connection_id, created=created, **kwargs)


class TestConnectionLifecycle:
    def test_open_reserves_vc_and_bandwidth(self):
        router, _ = make_router()
        vc_index = open_cbr(router)
        assert vc_index == 0
        vc = router.input_ports[0].vcs[vc_index]
        assert vc.connection_id == 1
        assert vc.output_port == 1
        assert router.admission.outputs[1].allocated_cycles == 4
        assert router.input_ports[0].status.vector("connection_active").test(0)
        assert router.input_ports[0].status.vector("cbr_service_requested").test(0)

    def test_open_fails_when_bandwidth_exhausted(self):
        config = small_config(round_factor=1)
        router, _ = make_router(config)
        cap = config.round_length
        assert open_cbr(router, 1, cycles=cap) is not None
        assert open_cbr(router, 2, cycles=1) is None
        assert router.stats.get_counter("connections_refused") == 1

    def test_open_fails_when_no_free_vc(self):
        router, _ = make_router()
        for i in range(8):
            assert open_cbr(router, i + 1, cycles=1) is not None
        assert open_cbr(router, 99, cycles=1) is None

    def test_close_restores_resources(self):
        router, _ = make_router()
        vc_index = open_cbr(router)
        router.close_connection(1, 0, vc_index, 1, BandwidthRequest(4))
        assert router.admission.outputs[1].allocated_cycles == 0
        assert router.input_ports[0].vcs[vc_index].is_free
        assert router.input_ports[0].find_free_vc() == 0

    def test_close_wrong_connection_rejected(self):
        router, _ = make_router()
        vc_index = open_cbr(router)
        with pytest.raises(RuntimeError):
            router.close_connection(999, 0, vc_index, 1, BandwidthRequest(4))

    def test_vbr_connection_state(self):
        router, _ = make_router()
        vc_index = router.open_connection(
            7, 0, 2, BandwidthRequest(3, 9), service_class=ServiceClass.VBR
        )
        vc = router.input_ports[0].vcs[vc_index]
        assert vc.permanent_cycles == 3
        assert vc.peak_cycles == 9
        assert router.input_ports[0].status.vector("vbr_service_requested").test(
            vc_index
        )

    def test_renegotiate_updates_registers_and_vc(self):
        router, _ = make_router()
        vc_index = open_cbr(router, cycles=4)
        vc = router.input_ports[0].vcs[vc_index]
        vc.allocated_cycles = 4
        old, new = BandwidthRequest(4), BandwidthRequest(6)
        assert router.renegotiate_connection(0, vc_index, old, new)
        assert router.admission.outputs[1].allocated_cycles == 6
        assert router.admission.inputs[0].allocated_cycles == 6
        assert vc.allocated_cycles == 6

    def test_renegotiate_refused_when_full(self):
        config = small_config(round_factor=1)
        router, _ = make_router(config)
        cap = config.round_length
        vc_index = open_cbr(router, 1, output_port=1, cycles=cap // 2)
        open_cbr(router, 2, input_port=1, output_port=1, cycles=cap // 2)
        old = BandwidthRequest(cap // 2)
        assert not router.renegotiate_connection(0, vc_index, old, BandwidthRequest(cap))
        assert router.admission.outputs[1].allocated_cycles == cap

    def test_renegotiate_unbound_vc_rejected(self):
        router, _ = make_router()
        with pytest.raises(RuntimeError):
            router.renegotiate_connection(
                0, 3, BandwidthRequest(1), BandwidthRequest(2)
            )


class TestFlitPath:
    def test_inject_and_transmit(self):
        router, sim = make_router()
        vc_index = open_cbr(router)
        flit = data_flit(created=0)
        assert router.inject(0, vc_index, flit)
        sim.run(2)
        assert flit.depart_time == 1
        assert flit.switch_delay() == 1
        assert router.connection_stats[1].flits == 1
        assert router.stats.get_counter("flits_switched") == 1

    def test_fifo_within_connection(self):
        router, sim = make_router()
        vc_index = open_cbr(router)
        flits = [data_flit(created=0, sequence=i) for i in range(3)]
        for f in flits:
            router.inject(0, vc_index, f)
        sim.run(5)
        departs = [f.depart_time for f in flits]
        assert departs == sorted(departs)
        assert len(set(departs)) == 3  # one per cycle

    def test_inject_refused_when_full(self):
        router, _ = make_router()
        vc_index = open_cbr(router)
        for i in range(4):
            assert router.inject(0, vc_index, data_flit())
        assert not router.inject(0, vc_index, data_flit())
        assert router.stats.get_counter("inject_blocked") == 1
        assert router.input_ports[0].status.vector("input_buffer_full").test(vc_index)

    def test_output_conflict_serialises(self):
        router, sim = make_router()
        a = open_cbr(router, 1, input_port=0, output_port=2)
        b = open_cbr(router, 2, input_port=1, output_port=2)
        fa, fb = data_flit(1), data_flit(2)
        router.inject(0, a, fa)
        router.inject(1, b, fb)
        sim.run(3)
        assert {fa.depart_time, fb.depart_time} == {1, 2}

    def test_perfect_switch_no_conflict(self):
        router, sim = make_router(scheduler=PerfectSwitchScheduler(4))
        a = open_cbr(router, 1, input_port=0, output_port=2)
        b = open_cbr(router, 2, input_port=1, output_port=2)
        fa, fb = data_flit(1), data_flit(2)
        router.inject(0, a, fa)
        router.inject(1, b, fb)
        sim.run(2)
        assert fa.depart_time == 1
        assert fb.depart_time == 1

    def test_output_handler_called(self):
        router, sim = make_router()
        delivered = []
        router.set_output_handler(1, lambda flit, vc: delivered.append(flit))
        vc_index = open_cbr(router)
        flit = data_flit()
        router.inject(0, vc_index, flit)
        sim.run(2)
        assert delivered == [flit]

    def test_credit_return_handler_called(self):
        router, sim = make_router()
        returns = []
        router.set_credit_return_handler(0, returns.append)
        vc_index = open_cbr(router)
        router.inject(0, vc_index, data_flit())
        sim.run(2)
        assert returns == [vc_index]

    def test_utilisation(self):
        router, sim = make_router()
        vc_index = open_cbr(router)
        router.inject(0, vc_index, data_flit())
        sim.run(4)
        # 1 flit over 4 cycles x 4 ports.
        assert router.utilisation() == pytest.approx(1 / 16)

    def test_buffered_flits(self):
        router, _ = make_router()
        vc_index = open_cbr(router)
        router.inject(0, vc_index, data_flit())
        router.inject(0, vc_index, data_flit())
        assert router.buffered_flits() == 2

    def test_reset_statistics(self):
        router, sim = make_router()
        vc_index = open_cbr(router)
        router.inject(0, vc_index, data_flit())
        sim.run(2)
        router.reset_statistics()
        assert router.stats.get_counter("flits_switched") == 0
        assert router.connection_stats[1].flits == 0
        # Connection state survives the reset.
        assert router.input_ports[0].vcs[vc_index].connection_id == 1


class TestPacketVcs:
    def test_open_packet_vc_bypasses_admission(self):
        config = small_config(round_factor=1)
        router, _ = make_router(config)
        open_cbr(router, 1, cycles=config.round_length)  # input link full
        vc_index = router.open_packet_vc(0, 2, ServiceClass.BEST_EFFORT, 50)
        assert vc_index is not None

    def test_packet_classes_only(self):
        router, _ = make_router()
        with pytest.raises(ValueError):
            router.open_packet_vc(0, 1, ServiceClass.CBR, 50)

    def test_packet_vc_released_after_tail(self):
        router, sim = make_router()
        vc_index = router.open_packet_vc(0, 1, ServiceClass.BEST_EFFORT, 50)
        flit = Flit(FlitType.BEST_EFFORT, connection_id=50, is_tail=True)
        router.inject(0, vc_index, flit)
        sim.run(2)
        assert router.input_ports[0].vcs[vc_index].is_free
        assert router.stats.get_counter("packet_vcs_released") == 1

    def test_no_free_vc_returns_none(self):
        router, _ = make_router()
        for i in range(8):
            router.open_packet_vc(0, 1, ServiceClass.BEST_EFFORT, i)
        assert router.open_packet_vc(0, 1, ServiceClass.BEST_EFFORT, 99) is None
        assert router.stats.get_counter("packet_vc_blocked") == 1

    def test_best_effort_loses_to_data(self):
        router, sim = make_router()
        data_vc = open_cbr(router, 1, input_port=0, output_port=2)
        be_vc = router.open_packet_vc(1, 2, ServiceClass.BEST_EFFORT, 50)
        data = data_flit(1)
        best_effort = Flit(FlitType.BEST_EFFORT, connection_id=50, is_tail=True)
        router.inject(1, be_vc, best_effort)
        router.inject(0, data_vc, data)
        sim.run(3)
        assert data.depart_time == 1
        assert best_effort.depart_time == 2


class TestImmediateCutThrough:
    def test_control_flit_cuts_through_idle_output(self):
        router, sim = make_router()
        vc_index = router.open_packet_vc(0, 3, ServiceClass.CONTROL, 60)
        flit = Flit(FlitType.CONTROL, connection_id=60, created=0, is_tail=True)
        delivered = []
        router.set_output_handler(3, lambda f, vc: delivered.append(f))
        assert router.inject(0, vc_index, flit)
        # Delivered synchronously, without waiting for a flit cycle.
        assert delivered == [flit]
        assert router.stats.get_counter("immediate_cut_throughs") == 1
        # The VC was released right away.
        assert router.input_ports[0].vcs[vc_index].is_free

    def test_second_control_same_cycle_buffers(self):
        router, sim = make_router()
        a = router.open_packet_vc(0, 3, ServiceClass.CONTROL, 60)
        flit_a = Flit(FlitType.CONTROL, connection_id=60, is_tail=True)
        router.inject(0, a, flit_a)
        b = router.open_packet_vc(1, 3, ServiceClass.CONTROL, 61)
        flit_b = Flit(FlitType.CONTROL, connection_id=61, is_tail=True)
        router.inject(1, b, flit_b)
        # Output 3 was consumed by the first cut-through this cycle.
        assert flit_b.depart_time is None
        sim.run(2)
        assert flit_b.depart_time is not None

    def test_data_flits_never_cut_through(self):
        router, sim = make_router()
        vc_index = open_cbr(router)
        flit = data_flit()
        router.inject(0, vc_index, flit)
        assert flit.depart_time is None  # waits for the flit cycle
