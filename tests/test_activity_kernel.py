"""Tests for the activity-driven simulation kernel.

Covers the kernel mechanics (activity gating, idle fast-forward, skip
accounting, the delay=0 ticker-context rule) and the determinism
guarantee: the activity-driven kernel must be cycle-for-cycle identical
to the spin-every-cycle kernel on seeded runs — same delivered-flit
timestamps, same counters.
"""

import pytest

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.core.router import Router
from repro.core.status_vectors import ActivitySet
from repro.core.switch_scheduler import GreedyPriorityScheduler
from repro.harness.network_experiment import (
    NetworkExperimentSpec,
    run_network_experiment,
)
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.sim.trace import Tracer
from repro.traffic.cbr import CbrSource


class TestActivitySet:
    def test_starts_idle(self):
        acts = ActivitySet(4)
        assert not acts.active()
        assert not acts

    def test_set_clear(self):
        acts = ActivitySet(4)
        acts.set(2)
        assert acts.active()
        assert acts.test(2)
        acts.clear(2)
        assert not acts.active()

    def test_assign(self):
        acts = ActivitySet(4)
        acts.assign(1, True)
        assert acts.active()
        acts.assign(1, False)
        assert not acts.active()

    def test_independent_bits(self):
        acts = ActivitySet(4)
        acts.set(0)
        acts.set(3)
        acts.clear(0)
        assert acts.active()  # bit 3 still busy

    def test_repr(self):
        assert "width=4" in repr(ActivitySet(4))


class TestActivityGating:
    def test_inactive_ticker_skipped(self):
        sim = Simulator()
        acts = ActivitySet(1)
        ticked = []
        sim.add_ticker(ticked.append, activity=acts)
        sim.run(3)
        assert ticked == []
        assert sim.now == 3

    def test_active_ticker_runs(self):
        sim = Simulator()
        acts = ActivitySet(1)
        acts.set(0)
        ticked = []
        sim.add_ticker(ticked.append, activity=acts)
        sim.run(3)
        assert ticked == [0, 1, 2]

    def test_callable_predicate(self):
        sim = Simulator()
        busy = [True]
        ticked = []
        sim.add_ticker(ticked.append, activity=lambda: busy[0])
        sim.run(2)
        busy[0] = False
        sim.run(2)
        assert ticked == [0, 1]

    def test_bad_activity_rejected(self):
        with pytest.raises(TypeError):
            Simulator().add_ticker(lambda c: None, activity=42)

    def test_ticker_deactivating_itself_mid_run(self):
        # A ticker that clears its own activity stops being invoked.
        sim = Simulator()
        acts = ActivitySet(1)
        acts.set(0)
        ticked = []

        def tick(cycle):
            ticked.append(cycle)
            if cycle == 1:
                acts.clear(0)

        sim.add_ticker(tick, activity=acts)
        sim.run(10)
        assert ticked == [0, 1]
        assert sim.now == 10

    def test_event_reactivates_ticker(self):
        sim = Simulator()
        acts = ActivitySet(1)
        ticked = []
        sim.add_ticker(ticked.append, activity=acts)
        sim.schedule(5, lambda: acts.set(0))
        sim.run(8)
        # The activating event fires at cycle 5, before the tick phase.
        assert ticked == [5, 6, 7]


class TestFastForward:
    def test_idle_run_fast_forwards(self):
        sim = Simulator()
        acts = ActivitySet(1)
        sim.add_ticker(lambda c: None, activity=acts)
        executed = sim.run(1000)
        assert executed == 1000
        assert sim.now == 1000
        assert sim.fast_forwarded_cycles == 1000

    def test_fast_forward_stops_at_events(self):
        sim = Simulator()
        acts = ActivitySet(1)
        sim.add_ticker(lambda c: None, activity=acts)
        fired = []
        sim.schedule(400, lambda: fired.append(sim.now))
        sim.run(1000)
        assert fired == [400]
        # Everything but the one evented cycle was skipped.
        assert sim.fast_forwarded_cycles == 999

    def test_ungated_ticker_disables_fast_forward(self):
        sim = Simulator()
        ticked = []
        sim.add_ticker(ticked.append)  # no activity predicate
        sim.run(50)
        assert len(ticked) == 50
        assert sim.fast_forwarded_cycles == 0

    def test_legacy_kernel_ticks_every_cycle(self):
        # allow_fast_forward=False selects the legacy (seed) kernel: every
        # ticker runs every cycle and activity/on_skip are ignored, so the
        # ticker does its own idle accounting exactly as the seed did.
        sim = Simulator(allow_fast_forward=False)
        assert sim.kernel == "legacy"
        assert Simulator().kernel == "activity"
        acts = ActivitySet(1)  # never active
        ticked = []
        skips = []
        sim.add_ticker(
            ticked.append,
            activity=acts,
            on_skip=lambda start, count: skips.append((start, count)),
        )
        sim.run(10)
        assert sim.fast_forwarded_cycles == 0
        assert ticked == list(range(10))
        assert skips == []

    def test_on_skip_receives_bulk_spans(self):
        sim = Simulator()
        acts = ActivitySet(1)
        spans = []
        sim.add_ticker(
            lambda c: None,
            activity=acts,
            on_skip=lambda start, count: spans.append((start, count)),
        )
        sim.schedule(300, lambda: None)
        sim.run(1000)
        assert spans == [(0, 300), (300, 1), (301, 699)]

    def test_per_cycle_skip_when_another_ticker_busy(self):
        # An idle ticker alongside a busy one is skipped cycle by cycle,
        # with its on_skip keeping the accounting exact.
        sim = Simulator()
        idle = ActivitySet(1)
        busy = ActivitySet(1)
        busy.set(0)
        skipped = []
        ticked = []
        sim.add_ticker(
            lambda c: None,
            activity=idle,
            on_skip=lambda start, count: skipped.append((start, count)),
        )
        sim.add_ticker(ticked.append, activity=busy)
        sim.run(4)
        assert ticked == [0, 1, 2, 3]
        assert skipped == [(0, 1), (1, 1), (2, 1), (3, 1)]

    def test_stop_during_fast_forward_region(self):
        sim = Simulator()
        acts = ActivitySet(1)
        sim.add_ticker(lambda c: None, activity=acts)
        sim.schedule(7, sim.stop)
        executed = sim.run(100)
        assert executed == 8  # cycles 0..7 complete (7 skipped + 1 stepped)
        assert sim.now == 8


class TestTickerContextScheduling:
    def test_delay_zero_from_ticker_rejected(self):
        sim = Simulator()
        errors = []

        def tick(cycle):
            try:
                sim.schedule(0, lambda: None)
            except ValueError as exc:
                errors.append(str(exc))

        sim.add_ticker(tick)
        sim.run(1)
        assert len(errors) == 1
        assert "delay=1" in errors[0]

    def test_schedule_at_now_from_ticker_rejected(self):
        sim = Simulator()
        errors = []

        def tick(cycle):
            try:
                sim.schedule_at(sim.now, lambda: None)
            except ValueError as exc:
                errors.append(exc)

        sim.add_ticker(tick)
        sim.run(1)
        assert len(errors) == 1

    def test_delay_one_from_ticker_allowed(self):
        sim = Simulator()
        fired = []
        sim.add_ticker(lambda c: sim.schedule(1, lambda: fired.append(sim.now)) if c == 0 else None)
        sim.run(3)
        assert fired == [1]

    def test_delay_zero_from_event_still_fires_same_cycle(self):
        sim = Simulator()
        order = []

        def outer():
            order.append("outer")
            sim.schedule(0, lambda: order.append("inner"))

        sim.schedule(2, outer)
        sim.run(3)
        assert order == ["outer", "inner"]


def _run_single_router(allow_fast_forward, cycles=6000, connections=8, rate=20e6):
    """A seeded single-router CBR scenario; returns delivery log and stats."""
    config = RouterConfig(enforce_round_budgets=False)
    sim = Simulator(allow_fast_forward=allow_fast_forward)
    router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)
    tracer = Tracer(capacity=100000, categories=("round",))
    router.tracer = tracer
    rng = SeededRng(7, "identity")
    delivered = []
    for port in range(config.num_ports):
        router.set_output_handler(
            port,
            lambda flit, ovc: delivered.append(
                (flit.connection_id, flit.sequence, flit.created, flit.depart_time)
            ),
        )
    for i in range(connections):
        vc_index = router.open_connection(
            i + 1,
            i % config.num_ports,
            (i * 3 + 1) % config.num_ports,
            BandwidthRequest(config.rate_to_cycles_per_round(rate)),
            interarrival_cycles=config.rate_to_interarrival_cycles(rate),
        )
        CbrSource(
            sim, router, i + 1, i % config.num_ports, vc_index, rate, config,
            phase=rng.uniform(0, 50),
        ).start()
    sim.run(cycles)
    router.check_invariants()
    rounds = [r.time for r in tracer.records()]
    return delivered, dict(router.stats.scalars), rounds, sim


class TestKernelIdentity:
    def test_single_router_bit_identical(self):
        """Same seeded run, fast-forward off vs on: identical delivered-flit
        timestamps, counters and round-boundary trace."""
        legacy = _run_single_router(False)
        activity = _run_single_router(True)
        assert activity[0] == legacy[0]  # delivered flits, cycle for cycle
        assert activity[1] == legacy[1]  # every stats counter, incl. cycles
        assert activity[2] == legacy[2]  # round boundaries at the same cycles
        assert legacy[3].fast_forwarded_cycles == 0
        assert activity[3].fast_forwarded_cycles > 0  # the speedup is real

    def test_multihop_network_identical(self):
        """Seeded multihop network experiment: identical end-to-end per-flit
        statistics under both kernels."""
        results = {}
        for mode in (False, True):
            spec = NetworkExperimentSpec(
                target_link_load=0.1,
                num_nodes=6,
                vcs_per_port=16,
                warmup_cycles=500,
                measure_cycles=2000,
                seed=11,
                allow_fast_forward=mode,
            )
            results[mode] = run_network_experiment(spec)
        legacy, activity = results[False], results[True]
        assert activity.streams == legacy.streams
        assert activity.mean_hops == legacy.mean_hops
        assert activity.delay_cycles.count == legacy.delay_cycles.count
        assert activity.delay_cycles.mean == legacy.delay_cycles.mean
        assert activity.delay_cycles.variance == legacy.delay_cycles.variance
        assert activity.jitter_cycles.mean == legacy.jitter_cycles.mean
        assert activity.by_hops == legacy.by_hops

    def test_idle_router_accounts_cycles_and_rounds(self):
        """A router with no traffic still reports every cycle and every
        round boundary after a fully fast-forwarded run."""
        config = RouterConfig(num_ports=4, vcs_per_port=8)  # round = 16
        sim = Simulator()
        router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)
        tracer = Tracer(categories=("round",))
        router.tracer = tracer
        sim.run(100)
        assert sim.fast_forwarded_cycles == 100
        assert router.stats.get_counter("cycles") == 100
        round_length = config.round_length
        expected = [c for c in range(100) if (c + 1) % round_length == 0]
        assert [r.time for r in tracer.records()] == expected

    def test_activity_published_through_lifecycle(self):
        from repro.core.flit import Flit, FlitType
        from repro.core.virtual_channel import ServiceClass

        config = RouterConfig(num_ports=4, vcs_per_port=8)
        sim = Simulator()
        router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)
        assert not router.activity.active()
        vc_index = router.open_connection(
            1, 0, 1, BandwidthRequest(2), service_class=ServiceClass.CBR
        )
        assert not router.activity.active()  # bound but no flits yet
        router.inject(0, vc_index, Flit(FlitType.DATA, connection_id=1, created=0))
        assert router.activity.active()
        sim.run(1)  # flit transmitted; crossbar still configured
        assert router.activity.active()
        sim.run(1)  # crossbar torn down
        assert not router.activity.active()
        router.check_invariants()
