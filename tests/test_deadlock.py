"""Tests for channel-dependency deadlock analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.topology import Topology, hypercube, irregular, mesh, ring, torus
from repro.routing.deadlock import (
    all_channels,
    build_dependency_graph,
    find_cycle,
    minimal_adaptive_relation,
    updown_relation,
    verify_deadlock_free,
)
from repro.sim.rng import SeededRng


class TestGraphMachinery:
    def test_all_channels_both_directions(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        assert all_channels(topo) == [(0, 1), (1, 0), (1, 2), (2, 1)]

    def test_find_cycle_on_acyclic(self):
        graph = {(0, 1): {(1, 2)}, (1, 2): set(), (2, 1): set(), (1, 0): set()}
        assert find_cycle(graph) is None

    def test_find_cycle_detects_loop(self):
        graph = {
            (0, 1): {(1, 2)},
            (1, 2): {(2, 0)},
            (2, 0): {(0, 1)},
        }
        cycle = find_cycle(graph)
        assert cycle is not None
        assert set(cycle) == {(0, 1), (1, 2), (2, 0)}

    def test_relation_adjacency_validated(self):
        topo = Topology(3, [(0, 1), (1, 2)])

        def broken(channel_in, node, destination):
            yield (99, 100)

        with pytest.raises(ValueError, match="non-adjacent"):
            build_dependency_graph(topo, broken)


class TestUpDownDeadlockFreedom:
    @pytest.mark.parametrize(
        "topo",
        [ring(6), mesh(3, 3), torus(3, 3), hypercube(3)],
        ids=["ring", "mesh", "torus", "hypercube"],
    )
    def test_regular_topologies_acyclic(self, topo):
        assert verify_deadlock_free(topo, updown_relation(topo)) is None

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 400), st.integers(4, 12))
    def test_random_irregular_acyclic(self, seed, nodes):
        """Up*/down* must be deadlock-free on every connected topology —
        the property Autonet's design rests on."""
        topo = irregular(nodes, SeededRng(seed, "dl"), mean_degree=3.0)
        assert verify_deadlock_free(topo, updown_relation(topo)) is None

    def test_root_choice_does_not_matter(self):
        topo = irregular(10, SeededRng(3, "root"), mean_degree=3.0)
        for root in range(10):
            assert verify_deadlock_free(topo, updown_relation(topo, root)) is None


class TestMinimalAdaptiveHazard:
    def test_cyclic_on_ring(self):
        """Unrestricted minimal routing deadlocks on a ring — the textbook
        example motivating escape channels."""
        topo = ring(6)
        cycle = verify_deadlock_free(topo, minimal_adaptive_relation(topo))
        assert cycle is not None

    def test_cyclic_on_torus(self):
        topo = torus(3, 3)
        assert verify_deadlock_free(topo, minimal_adaptive_relation(topo)) is not None

    def test_acyclic_on_tree(self):
        # A tree has a unique minimal path between any pair: no cycles.
        topo = Topology(5, [(0, 1), (0, 2), (1, 3), (1, 4)])
        assert verify_deadlock_free(topo, minimal_adaptive_relation(topo)) is None

    def test_acyclic_on_line_mesh(self):
        topo = mesh(4, 1)
        assert verify_deadlock_free(topo, minimal_adaptive_relation(topo)) is None
