"""Span tracer: emission, capacity, queries, Chrome-trace export."""

import pytest

from repro.obs.spans import (
    CONTROL_PLANE_PID,
    DROPPED,
    STATUS_BLOCKED,
    STATUS_OK,
    STATUS_OPEN,
    SpanTracer,
)


def _session_tree(tracer: SpanTracer) -> dict:
    """A typical session lifecycle: root -> setup(hops, ack) -> teardown."""
    root = tracer.begin("session 1", "session", 100, session=1)
    setup = tracer.begin("setup", "setup", 100, parent=root)
    hop_a = tracer.begin("hop", "hop", 100, parent=setup, node=0)
    tracer.end(hop_a, 102)
    hop_b = tracer.begin("hop", "hop", 102, parent=setup, node=1)
    tracer.end(hop_b, 110)
    ack = tracer.begin("ack", "ack", 110, parent=setup)
    tracer.end(ack, 114)
    tracer.end(setup, 114, hops=2)
    teardown = tracer.begin("teardown", "teardown", 500, parent=root)
    tracer.end(teardown, 504)
    tracer.end(root, 504)
    return {
        "root": root, "setup": setup, "hop_a": hop_a,
        "hop_b": hop_b, "ack": ack, "teardown": teardown,
    }


class TestEmission:
    def test_tree_structure_and_args(self):
        tracer = SpanTracer()
        ids = _session_tree(tracer)
        assert len(tracer) == 6
        assert tracer.open_count == 0
        root = tracer.get(ids["root"])
        assert root.parent_id == DROPPED
        assert root.args == {"session": 1}
        setup_children = tracer.children(ids["setup"])
        assert [s.name for s in setup_children] == ["hop", "hop", "ack"]
        assert tracer.get(ids["setup"]).args["hops"] == 2

    def test_duration_and_status(self):
        tracer = SpanTracer()
        span = tracer.begin("setup", "setup", 10)
        live = tracer.get(span)
        assert live.status == STATUS_OPEN
        assert not live.closed
        assert live.duration == 0
        tracer.end(span, 25, STATUS_BLOCKED)
        assert live.closed
        assert live.duration == 15
        assert live.status == STATUS_BLOCKED

    def test_double_close_raises(self):
        tracer = SpanTracer()
        span = tracer.begin("setup", "setup", 0)
        tracer.end(span, 5)
        with pytest.raises(ValueError, match="already closed"):
            tracer.end(span, 9)

    def test_capacity_drops_and_sentinel_is_inert(self):
        tracer = SpanTracer(capacity=2)
        keep = tracer.begin("a", "x", 0)
        tracer.begin("b", "x", 0)
        overflow = tracer.begin("c", "x", 0)
        assert overflow == DROPPED
        assert tracer.dropped == 1
        # The sentinel is safe to end/annotate without guards.
        tracer.end(DROPPED, 10)
        tracer.annotate(DROPPED, note="ignored")
        assert len(tracer) == 2
        assert tracer.get(keep).args == {}

    def test_child_of_unrecorded_parent_becomes_root(self):
        tracer = SpanTracer()
        # Parent id that was never stored (e.g. dropped under pressure):
        # the child is kept as a root so partial trees survive.
        orphan = tracer.begin("child", "x", 5, parent=991)
        assert tracer.get(orphan).parent_id == DROPPED
        assert [s.span_id for s in tracer.roots()] == [orphan]
        sentinel_child = tracer.begin("child2", "x", 6, parent=DROPPED)
        assert tracer.get(sentinel_child).parent_id == DROPPED

    def test_clear_resets_ids_and_counters(self):
        tracer = SpanTracer(capacity=1)
        tracer.begin("a", "x", 0)
        tracer.begin("b", "x", 0)
        assert tracer.dropped == 1
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        assert tracer.begin("fresh", "x", 0) == 1


class TestQueries:
    def test_critical_path_follows_longest_closed_child(self):
        tracer = SpanTracer()
        ids = _session_tree(tracer)
        path = [(s.name, s.duration) for s in tracer.critical_path(ids["root"])]
        # setup (14) beats teardown (4); hop_b (8) dominates the setup.
        assert path == [
            ("session 1", 404), ("setup", 14), ("hop", 8),
        ]

    def test_critical_path_ignores_open_children(self):
        tracer = SpanTracer()
        root = tracer.begin("session", "session", 0)
        open_child = tracer.begin("setup", "setup", 0, parent=root)
        closed = tracer.begin("teardown", "teardown", 0, parent=root)
        tracer.end(closed, 3)
        tracer.end(root, 10)
        assert open_child != DROPPED
        names = [s.name for s in tracer.critical_path(root)]
        assert names == ["session", "teardown"]

    def test_slowest_orders_by_duration_then_id(self):
        tracer = SpanTracer()
        a = tracer.begin("s", "setup", 0)
        tracer.end(a, 5)
        b = tracer.begin("s", "setup", 0)
        tracer.end(b, 9)
        c = tracer.begin("s", "setup", 0)
        tracer.end(c, 5)
        assert [s.span_id for s in tracer.slowest("setup")] == [b, a, c]
        assert [s.span_id for s in tracer.slowest("setup", k=1)] == [b]

    def test_quantile_span_nearest_rank(self):
        tracer = SpanTracer()
        spans = []
        for duration in (10, 20, 30, 40):
            span = tracer.begin("s", "setup", 0)
            tracer.end(span, duration)
            spans.append(span)
        assert tracer.quantile_span("setup", 0.5).span_id == spans[1]
        assert tracer.quantile_span("setup", 0.99).span_id == spans[3]
        assert tracer.quantile_span("setup", 0.0).span_id == spans[0]
        assert tracer.quantile_span("other", 0.5) is None
        with pytest.raises(ValueError):
            tracer.quantile_span("setup", 1.5)

    def test_root_of_walks_to_session(self):
        tracer = SpanTracer()
        ids = _session_tree(tracer)
        assert tracer.root_of(ids["hop_b"]).span_id == ids["root"]
        assert tracer.root_of(ids["root"]).span_id == ids["root"]
        assert tracer.root_of(987654) is None


class TestTraceExport:
    def test_closed_spans_become_complete_events_on_pid2(self):
        tracer = SpanTracer()
        ids = _session_tree(tracer)
        events = tracer.to_trace_events()
        xs = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(xs) == 6
        assert all(e["pid"] == CONTROL_PLANE_PID for e in xs)
        # All spans of one session share the root's lane.
        assert {e["tid"] for e in xs} == {ids["root"]}
        lane_names = [e for e in metas if e["name"] == "thread_name"]
        assert lane_names[0]["args"]["name"] == "session 1"
        by_name = {e["name"]: e for e in xs}
        assert by_name["setup"]["dur"] == 14
        assert by_name["setup"]["args"]["status"] == STATUS_OK
        assert by_name["setup"]["args"]["parent"] == ids["root"]

    def test_open_spans_are_skipped(self):
        tracer = SpanTracer()
        tracer.begin("session", "session", 0)
        events = tracer.to_trace_events()
        assert [e for e in events if e["ph"] == "X"] == []

    def test_us_per_cycle_scales_timestamps(self):
        tracer = SpanTracer()
        span = tracer.begin("s", "setup", 10)
        tracer.end(span, 30)
        (event,) = [e for e in tracer.to_trace_events(0.5) if e["ph"] == "X"]
        assert event["ts"] == 5.0
        assert event["dur"] == 10.0
