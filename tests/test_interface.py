"""Tests for the network interface: streams, policing, renegotiation."""

import pytest

from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.network.connection import ConnectionManager
from repro.network.interface import NetworkInterface
from repro.network.network import Network
from repro.network.policing import TokenBucket, report
from repro.network.topology import mesh
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.traffic.vbr import MpegProfile


def build(vcs=8):
    topo = mesh(2, 2)
    config = RouterConfig(
        num_ports=topo.num_ports,
        vcs_per_port=vcs,
        enforce_round_budgets=False,
    )
    sim = Simulator()
    rng = SeededRng(17, "iface")
    network = Network(topo, config, BiasedPriority(), sim, rng)
    manager = ConnectionManager(network)
    interfaces = [
        NetworkInterface(network, manager, n, rng=rng.spawn(f"ni{n}"))
        for n in range(4)
    ]
    return network, manager, sim, interfaces


class TestCbrStreams:
    def test_open_and_deliver(self):
        network, manager, sim, interfaces = build()
        stream = interfaces[0].open_cbr(3, 55e6)
        assert stream is not None
        assert stream.policer is not None
        sim.run(10000)
        stats = interfaces[3].end_to_end[stream.connection.connection_id]
        assert stats.flits > 200

    def test_injection_waits_for_setup(self):
        network, manager, sim, interfaces = build()
        stream = interfaces[0].open_cbr(3, 120e6)
        ready = stream.connection.ready_at
        assert ready > 0
        sim.run(max(1, ready - 1))
        assert stream.source.flits_generated == 0

    def test_open_fails_gracefully_when_full(self):
        network, manager, sim, interfaces = build()
        config = network.config
        # Saturate the host input link at node 0.
        opened = []
        while True:
            stream = interfaces[0].open_cbr(3, 120e6)
            if stream is None:
                break
            opened.append(stream)
        assert opened  # some connections fit
        assert len(interfaces[0].streams) == len(opened)

    def test_close_returns_resources(self):
        network, manager, sim, interfaces = build()
        stream = interfaces[0].open_cbr(3, 20e6, stop_time=1)
        sim.run(5000)  # drain everything in flight
        interfaces[0].close(stream)
        assert stream.connection.closed
        assert not interfaces[0].streams


class TestVbrStreams:
    def test_open_vbr_and_deliver(self):
        # 64 VCs/port -> 128-cycle rounds, fine enough to distinguish the
        # profile's permanent and peak demands.
        network, manager, sim, interfaces = build(vcs=64)
        profile = MpegProfile(mean_rate_bps=10e6, frame_rate_hz=3000.0, sigma=0.1)
        stream = interfaces[1].open_vbr(2, profile)
        assert stream is not None
        assert stream.connection.request.is_vbr
        sim.run(30000)
        stats = interfaces[2].end_to_end[stream.connection.connection_id]
        assert stats.flits > 50

    def test_vbr_admission_uses_peak_registers(self):
        network, manager, sim, interfaces = build(vcs=64)
        profile = MpegProfile(mean_rate_bps=10e6, frame_rate_hz=3000.0, sigma=0.1)
        stream = interfaces[1].open_vbr(2, profile)
        hop = stream.connection.path[0]
        port = stream.connection.ports[0]
        allocator = network.routers[hop].admission.outputs[port]
        assert allocator.peak_cycles > 0


class TestDynamicManagement:
    def test_renegotiate_bandwidth(self):
        network, manager, sim, interfaces = build()
        stream = interfaces[0].open_cbr(3, 10e6)
        old_interarrival = stream.source.interarrival
        assert interfaces[0].renegotiate_bandwidth(stream, 40e6)
        assert stream.source.interarrival < old_interarrival
        assert stream.source.rate_bps == 40e6
        # VC state follows so the biased priority sees the new rate.
        vc = network.routers[stream.connection.path[0]].input_ports[
            stream.connection.entry_ports[0]
        ].vcs[stream.connection.vcs[0]]
        assert vc.interarrival_cycles == pytest.approx(
            network.config.rate_to_interarrival_cycles(40e6)
        )

    def test_renegotiate_refused_when_no_capacity(self):
        network, manager, sim, interfaces = build()
        stream = interfaces[0].open_cbr(3, 10e6)
        assert not interfaces[0].renegotiate_bandwidth(stream, 2e9)
        assert stream.source.rate_bps == 10e6

    def test_set_priority(self):
        network, manager, sim, interfaces = build()
        stream = interfaces[0].open_cbr(3, 10e6)
        interfaces[0].set_priority(stream, 0.9)
        vc = network.routers[stream.connection.path[0]].input_ports[
            stream.connection.entry_ports[0]
        ].vcs[stream.connection.vcs[0]]
        assert vc.static_priority == 0.9


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 2)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0.5)

    def test_burst_then_throttle(self):
        bucket = TokenBucket(rate_per_cycle=0.1, burst=2)
        assert bucket.allow(0)
        assert bucket.allow(0)
        assert not bucket.allow(0)  # burst exhausted
        assert bucket.allow(10)  # one token refilled

    def test_refill_capped_at_burst(self):
        bucket = TokenBucket(rate_per_cycle=1.0, burst=3)
        assert bucket.tokens_at(1000) == pytest.approx(3.0)

    def test_long_run_rate_enforced(self):
        bucket = TokenBucket(rate_per_cycle=0.25, burst=2)
        allowed = sum(1 for t in range(4000) if bucket.allow(t))
        assert allowed == pytest.approx(1000, rel=0.02)

    def test_time_reversal_rejected(self):
        bucket = TokenBucket(1.0, 2)
        bucket.allow(5)
        with pytest.raises(ValueError):
            bucket.allow(3)

    def test_set_rate(self):
        bucket = TokenBucket(0.1, 1)
        bucket.set_rate(1.0)
        bucket.allow(0)
        assert bucket.allow(1)
        with pytest.raises(ValueError):
            bucket.set_rate(0.0)

    def test_set_rate_up_settles_accrual_at_old_rate(self):
        # Drain the initial burst, let 100 cycles accrue at the slow old
        # rate, then renegotiate up.  The elapsed window was earned at
        # 0.01 tokens/cycle (1 token), not repriced at 1.0 (100 tokens).
        bucket = TokenBucket(rate_per_cycle=0.01, burst=10)
        for _ in range(10):
            assert bucket.allow(0)
        bucket.set_rate(1.0, now=100)
        assert bucket.tokens_at(100) == pytest.approx(1.0)

    def test_set_rate_down_settles_accrual_at_old_rate(self):
        # The mirror image: tokens the old fast contract already paid for
        # must not be confiscated by repricing the window at the new
        # slow rate.
        bucket = TokenBucket(rate_per_cycle=1.0, burst=10)
        for _ in range(10):
            assert bucket.allow(0)
        bucket.set_rate(0.01, now=100)
        assert bucket.tokens_at(100) == pytest.approx(10.0)  # refilled to cap

    def test_set_rate_without_now_defers_settlement(self):
        # Legacy call sites that pass no timestamp keep the old behavior:
        # the next refill prices the whole window at the new rate.
        bucket = TokenBucket(rate_per_cycle=0.01, burst=10)
        for _ in range(10):
            assert bucket.allow(0)
        bucket.set_rate(1.0)
        assert bucket.tokens_at(100) == pytest.approx(10.0)

    def test_report(self):
        bucket = TokenBucket(0.5, 1)
        bucket.allow(0)
        bucket.allow(0)
        summary = report(bucket)
        assert summary.conforming == 1
        assert summary.violations == 1
        assert summary.violation_fraction == pytest.approx(0.5)

    def test_empty_report(self):
        assert report(TokenBucket(1.0, 1)).violation_fraction == 0.0
