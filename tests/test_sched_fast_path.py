"""Property tests for the bit-parallel scheduling fast path.

Drives a small mesh network through seeded-random workloads — CBR and
VBR streams, best-effort packets (which route lazily), finite link
credits from small downstream buffers, and round boundaries with budget
enforcement — then pauses at arbitrary points and checks that:

* the fused eligibility mask ``flits & credits & routed & ~exhausted``
  equals the brute-force per-VC predicate the reference walk evaluates;
* the fast-path candidate set is identical to the reference walk's
  under all four selection modes;
* the routers' cross-structure invariants hold (vector/state sync).
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.network.connection import ConnectionManager
from repro.network.interface import NetworkInterface
from repro.network.network import Network
from repro.network.topology import mesh
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.traffic.vbr import MpegProfile

NODES = 4
CBR_RATES = (10e6, 20e6, 40e6)
SELECTION_MODES = ("per_output", "priority", "rotating", "random")

# One op per tuple: (kind, src, dst-ish, magnitude).  dst collapses onto
# a different node than src; magnitude picks a rate or a cycle count.
operations = st.lists(
    st.tuples(
        st.sampled_from(["cbr", "vbr", "be", "run"]),
        st.integers(0, NODES - 1),
        st.integers(0, NODES - 1),
        st.integers(1, 300),
    ),
    min_size=4,
    max_size=24,
)


def build_network():
    topo = mesh(2, 2)
    config = RouterConfig(
        num_ports=topo.num_ports,
        vcs_per_port=8,
        vc_buffer_flits=2,  # small buffers: credit bits actually toggle
        enforce_round_budgets=True,  # exhausted bits actually toggle
        round_factor=4,
    )
    sim = Simulator()
    rng = SeededRng(17, "fastpath")
    network = Network(
        topo, config, BiasedPriority(), sim, rng, link_latency=2
    )
    manager = ConnectionManager(network)
    interfaces = [
        NetworkInterface(network, manager, n, rng=rng.spawn(f"ni{n}"))
        for n in range(NODES)
    ]
    return network, interfaces, sim


def brute_force_mask(router, port):
    """The reference walk's eligibility predicate, one bit per VC."""
    scheduler = router.link_schedulers[port.port]
    mask = 0
    for vc in port.vcs:
        if vc.occupancy == 0 or vc.output_port < 0:
            continue
        if not router._credit_check(vc.output_port, vc.output_vc):
            continue
        if scheduler._round_gate(vc) is None:
            continue
        mask |= 1 << vc.index
    return mask


def assert_modes_identical(scheduler, now):
    """Fast-path candidates == reference candidates, all four modes.

    Rotating mode mutates the scan pointer and random mode draws from
    the rng, so both are saved/replayed so the two walks see identical
    state; counters are restored afterwards (this probe must not skew
    the telemetry the run accumulates).
    """
    saved = (
        scheduler.selection,
        scheduler._per_output_fast,
        scheduler.fast_path,
        scheduler._scan_pointer,
        scheduler.rng,
        scheduler.candidates_offered,
        scheduler.cycles_with_candidates,
        scheduler.eligible_vcs_total,
    )
    try:
        for mode in SELECTION_MODES:
            scheduler.selection = mode
            scheduler._per_output_fast = mode == "per_output"
            scheduler._scan_pointer = saved[3]
            scheduler.rng = SeededRng(2024, f"probe-{mode}")
            scheduler.fast_path = True
            fast = scheduler.candidates(now)
            scheduler._scan_pointer = saved[3]
            scheduler.rng = SeededRng(2024, f"probe-{mode}")
            scheduler.fast_path = False
            reference = scheduler.candidates(now)
            assert fast == reference, (
                f"selection={mode} port={scheduler.port}: "
                f"fast={fast} reference={reference}"
            )
    finally:
        (
            scheduler.selection,
            scheduler._per_output_fast,
            scheduler.fast_path,
            scheduler._scan_pointer,
            scheduler.rng,
            scheduler.candidates_offered,
            scheduler.cycles_with_candidates,
            scheduler.eligible_vcs_total,
        ) = saved


def check_network(network, now):
    for router in network.routers:
        router.check_invariants()
        for port in router.input_ports:
            scheduler = router.link_schedulers[port.port]
            assert scheduler.fused_mask() == brute_force_mask(router, port), (
                f"{router.name} port {port.port}: fused mask diverged "
                "from the brute-force predicate"
            )
            assert_modes_identical(scheduler, now)


class TestFusedMaskProperty:
    @settings(max_examples=15, deadline=None)
    @given(operations)
    def test_fused_mask_and_candidates_match_reference(self, ops):
        network, interfaces, sim = build_network()
        for kind, src, dst, magnitude in ops:
            destination = dst if dst != src else (src + 1) % NODES
            if kind == "cbr":
                interfaces[src].open_cbr(
                    destination, CBR_RATES[magnitude % len(CBR_RATES)]
                )
            elif kind == "vbr":
                interfaces[src].open_vbr(
                    destination, MpegProfile(mean_rate_bps=15e6)
                )
            elif kind == "be":
                interfaces[src].send_best_effort(destination)
            else:
                sim.run(magnitude)
                check_network(network, sim.now)
        sim.run(300)
        check_network(network, sim.now)

    def test_close_clears_fast_path_bits(self):
        """Teardown scrubs the routed/credit/exhausted bits on every hop."""
        network, interfaces, sim = build_network()
        stream = interfaces[0].open_cbr(3, 20e6)
        assert stream is not None
        sim.run(2000)
        check_network(network, sim.now)
        # Stop the source, drain in-flight flits, then tear down.
        stream.source.stop_time = sim.now
        sim.run(3000)
        assert network.total_buffered() == 0
        interfaces[0].close(stream)
        check_network(network, sim.now)
        for router in network.routers:
            for scheduler in router.link_schedulers:
                assert scheduler.fused_mask() == 0
