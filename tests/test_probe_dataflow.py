"""End-to-end: data flows over a connection the probe protocol set up.

The probe/ack tokens install per-hop VC state directly (channel mappings,
output VC chaining, scheduling parameters); these tests verify that a CBR
source can then pump flits through the network over exactly that state —
the full PCS life cycle on the wire.
"""

import pytest

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.network.network import Network
from repro.network.probe_protocol import ProbeProtocol
from repro.network.topology import mesh
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.traffic.cbr import CbrSource


def build():
    topo = mesh(3, 3)
    config = RouterConfig(
        num_ports=topo.num_ports,
        vcs_per_port=16,
        round_factor=32,
        enforce_round_budgets=False,
    )
    sim = Simulator()
    network = Network(
        topo, config, BiasedPriority(), sim, SeededRng(12, "pd")
    )
    return topo, network, ProbeProtocol(network), sim, config


def establish(protocol, sim, source, destination, cycles=4):
    done = []
    session = protocol.establish(
        source,
        destination,
        BandwidthRequest(cycles),
        lambda s, ok: done.append(ok),
        interarrival_cycles=23.0,
    )
    sim.run(300)
    assert done and done[0], "probe establishment failed"
    return session


class TestDataOverProbedConnection:
    def test_flits_reach_the_destination_host(self):
        topo, network, protocol, sim, config = build()
        session = establish(protocol, sim, 0, 8)
        received = []
        network.set_host_delivery(
            8, topo.host_port(8), lambda n, p, f: received.append(f)
        )
        rate = config.link_rate_bps / 23.0
        source = CbrSource(
            sim,
            network.routers[0],
            -session.session_id,
            session.entry_ports[0],
            session.vcs[0],
            rate,
            config,
        )
        source.start()
        sim.run(5000)
        assert len(received) > 150
        # In order, none lost beyond those still in flight.
        sequences = [f.sequence for f in received]
        assert sequences == sorted(sequences)
        assert source.flits_generated - len(received) <= 16

    def test_end_to_end_latency_scales_with_hops(self):
        topo, network, protocol, sim, config = build()
        latencies = {}
        for destination in (1, 8):  # 1 hop vs 4 hops away
            session = establish(protocol, sim, 0, destination)
            received = []
            network.set_host_delivery(
                destination,
                topo.host_port(destination),
                lambda n, p, f, bucket=received: bucket.append(
                    sim.now - f.created
                ),
            )
            source = CbrSource(
                sim,
                network.routers[0],
                -session.session_id,
                session.entry_ports[0],
                session.vcs[0],
                config.link_rate_bps / 23.0,
                config,
            )
            source.start()
            sim.run(3000)
            assert received
            latencies[destination] = sum(received) / len(received)
        assert latencies[8] > latencies[1]

    def test_teardown_after_dataflow_restores_network(self):
        topo, network, protocol, sim, config = build()
        session = establish(protocol, sim, 0, 8)
        source = CbrSource(
            sim,
            network.routers[0],
            -session.session_id,
            session.entry_ports[0],
            session.vcs[0],
            config.link_rate_bps / 23.0,
            config,
            stop_time=1000,
        )
        source.start()
        sim.run(3000)  # stream runs, stops, drains
        assert network.total_buffered() == 0
        protocol.teardown(session)
        sim.run(50)
        for node in session.path:
            router = network.routers[node]
            for allocator in router.admission.outputs:
                assert allocator.allocated_cycles == 0
            for port in router.input_ports:
                assert port.free_vc_count() == 16

    def test_two_probed_streams_share_a_link(self):
        topo, network, protocol, sim, config = build()
        a = establish(protocol, sim, 0, 2)  # along the top row
        b = establish(protocol, sim, 3, 2)
        received = {0: 0, 3: 0}
        def deliver(node, port, flit):
            received[0 if flit.connection_id == -a.session_id else 3] += 1
        network.set_host_delivery(2, topo.host_port(2), deliver)
        for session, src in ((a, 0), (b, 3)):
            CbrSource(
                sim,
                network.routers[src],
                -session.session_id,
                session.entry_ports[0],
                session.vcs[0],
                config.link_rate_bps / 23.0,
                config,
            ).start()
        sim.run(4000)
        assert received[0] > 100
        assert received[3] > 100
