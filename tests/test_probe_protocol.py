"""Tests for the cycle-accurate probe/ack/teardown protocol."""

import pytest

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.core.virtual_channel import ServiceClass
from repro.network.network import Network
from repro.network.probe_protocol import CONTROL_HOP_CYCLES, ProbeProtocol
from repro.network.topology import Topology, mesh
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng


def build(topo=None, vcs=8):
    topo = topo or mesh(3, 3)
    config = RouterConfig(
        num_ports=topo.num_ports,
        vcs_per_port=vcs,
        round_factor=2,
        enforce_round_budgets=False,
    )
    sim = Simulator()
    network = Network(topo, config, BiasedPriority(), sim, SeededRng(6, "probe"))
    return network, ProbeProtocol(network), sim, config


class Recorder:
    """Collects completion callbacks."""

    def __init__(self):
        self.results = []

    def __call__(self, session, established):
        self.results.append((session, established))


class TestProbeEstablishment:
    def test_probe_reaches_destination(self):
        network, protocol, sim, _ = build()
        done = Recorder()
        session = protocol.establish(0, 8, BandwidthRequest(4), done)
        sim.run(200)
        assert done.results
        finished, ok = done.results[0]
        assert ok
        assert finished is session
        assert session.path[0] == 0
        assert session.path[-1] == 8
        assert session.established

    def test_establishment_takes_real_cycles(self):
        network, protocol, sim, _ = build()
        done = Recorder()
        session = protocol.establish(0, 8, BandwidthRequest(4), done)
        # Nothing completes instantaneously.
        assert not done.results
        sim.run(2)
        assert not done.results
        sim.run(200)
        assert done.results
        # At least one hop-delay per link out and the ack back.
        hops = session.hops if hasattr(session, "hops") else len(session.path) - 1
        assert session.setup_cycles >= CONTROL_HOP_CYCLES * (len(session.path) - 1)

    def test_longer_paths_take_longer(self):
        network, protocol, sim, _ = build()
        done = Recorder()
        near = protocol.establish(0, 1, BandwidthRequest(1), done)
        far = protocol.establish(0, 8, BandwidthRequest(1), done)
        sim.run(300)
        assert near.setup_cycles < far.setup_cycles

    def test_reserves_bandwidth_and_vcs_along_path(self):
        network, protocol, sim, _ = build()
        done = Recorder()
        session = protocol.establish(0, 2, BandwidthRequest(4), done)
        sim.run(200)
        assert session.established
        for i, node in enumerate(session.path):
            router = network.routers[node]
            vc = router.input_ports[session.entry_ports[i]].vcs[session.vcs[i]]
            assert vc.connection_id == -session.session_id
            assert vc.output_port == session.ports[i]
            assert router.admission.outputs[session.ports[i]].allocated_cycles == 4

    def test_channel_mappings_installed(self):
        network, protocol, sim, _ = build()
        done = Recorder()
        session = protocol.establish(0, 2, BandwidthRequest(4), done)
        sim.run(200)
        for i in range(len(session.path) - 1):
            router = network.routers[session.path[i]]
            next_hop = router.rau.next_hop(session.entry_ports[i], session.vcs[i])
            assert next_hop == (session.ports[i], session.vcs[i + 1])

    def test_failure_when_no_capacity(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        network, protocol, sim, config = build(topo=topo)
        done = Recorder()
        cap = config.round_length
        first = protocol.establish(0, 2, BandwidthRequest(cap), done)
        sim.run(200)
        assert first.established
        second = protocol.establish(0, 2, BandwidthRequest(1), done)
        sim.run(200)
        assert not second.established
        assert len(done.results) == 2
        assert done.results[1] == (second, False)

    def test_failed_probe_releases_partial_reservations(self):
        # A 1->4 blocker fills the 1->3 link (its only minimal path), so a
        # 0->3 probe dead-ends at node 1 and must backtrack via node 2.
        topo = Topology(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        network, protocol, sim, config = build(topo=topo)
        cap = config.round_length
        done = Recorder()
        blocker = protocol.establish(1, 4, BandwidthRequest(cap), done)
        sim.run(200)
        assert blocker.established
        probe = protocol.establish(0, 3, BandwidthRequest(cap), done)
        sim.run(400)
        assert probe.established
        assert probe.path == [0, 2, 3]
        assert probe.backtracks >= 1
        # Node 1 holds no leftover state from the abandoned branch.
        router1 = network.routers[1]
        assert router1.admission.inputs[topo.port_of(1, 0)].allocated_cycles == 0

    def test_total_failure_releases_everything(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        network, protocol, sim, config = build(topo=topo)
        cap = config.round_length
        done = Recorder()
        protocol.establish(1, 2, BandwidthRequest(cap), done)
        sim.run(100)
        probe = protocol.establish(0, 2, BandwidthRequest(cap), done)
        sim.run(400)
        assert not probe.established
        # Its partial reservation on link 0->1 was rolled back.
        assert network.routers[0].admission.outputs[0].allocated_cycles == 0
        port_1_from_0 = topo.port_of(1, 0)
        assert (
            network.routers[1].admission.inputs[port_1_from_0].allocated_cycles
            == cap * 0 + cap  # only the blocker's footprint remains
            or network.routers[1].admission.inputs[port_1_from_0].allocated_cycles == 0
        )

    def test_source_rejection_is_immediate_failure(self):
        topo = Topology(2, [(0, 1)])
        network, protocol, sim, config = build(topo=topo, vcs=2)
        done = Recorder()
        cap = config.round_length
        protocol.establish(0, 1, BandwidthRequest(cap), done)
        sim.run(100)
        probe = protocol.establish(0, 1, BandwidthRequest(cap), done)
        sim.run(100)
        assert not probe.established
        assert probe.links_searched == 0  # refused before probing


class TestTeardown:
    def test_teardown_releases_hops_progressively(self):
        network, protocol, sim, _ = build()
        done = Recorder()
        session = protocol.establish(0, 8, BandwidthRequest(4), done)
        sim.run(200)
        assert session.established
        protocol.teardown(session)
        sim.run(CONTROL_HOP_CYCLES * len(session.path) + 5)
        assert not session.established
        for node in session.path:
            router = network.routers[node]
            for allocator in router.admission.outputs:
                assert allocator.allocated_cycles == 0
            for port in router.input_ports:
                assert port.free_vc_count() == 8

    def test_teardown_of_unestablished_rejected(self):
        network, protocol, sim, _ = build()
        done = Recorder()
        session = protocol.establish(0, 8, BandwidthRequest(4), done)
        with pytest.raises(RuntimeError):
            protocol.teardown(session)

    def test_capacity_reusable_after_teardown(self):
        topo = Topology(2, [(0, 1)])
        network, protocol, sim, config = build(topo=topo)
        done = Recorder()
        cap = config.round_length
        first = protocol.establish(0, 1, BandwidthRequest(cap), done)
        sim.run(100)
        protocol.teardown(first)
        sim.run(50)
        second = protocol.establish(0, 1, BandwidthRequest(cap), done)
        sim.run(100)
        assert second.established


class TestConcurrentProbes:
    def test_racing_probes_share_the_network(self):
        network, protocol, sim, config = build()
        done = Recorder()
        sessions = [
            protocol.establish(src, dst, BandwidthRequest(2), done)
            for src, dst in [(0, 8), (2, 6), (6, 2), (8, 0)]
        ]
        sim.run(500)
        assert len(done.results) == 4
        assert all(ok for _, ok in done.results)
        # Each established its own disjoint VC state.
        ids = {s.session_id for s in sessions}
        assert len(ids) == 4

    def test_contending_probes_never_double_book(self):
        topo = Topology(2, [(0, 1)])
        network, protocol, sim, config = build(topo=topo)
        done = Recorder()
        cap = config.round_length
        half = cap // 2
        for _ in range(4):
            protocol.establish(0, 1, BandwidthRequest(half), done)
        sim.run(300)
        established = sum(1 for _, ok in done.results if ok)
        assert established == 2  # exactly the link's capacity
        assert network.routers[0].admission.outputs[0].allocated_cycles == cap
