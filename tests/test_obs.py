"""Tests for the flight recorder subsystem (repro.obs)."""

import json

import pytest

from repro.core.config import RouterConfig
from repro.harness.kernel_bench import build_cbr_scenario
from repro.harness.single_router import (
    ExperimentSpec,
    SingleRouterExperiment,
    run_single_router_experiment,
)
from repro.obs import (
    MANIFEST_SCHEMA,
    NULL_RECORDER,
    FlightRecorder,
    KernelProfiler,
    TelemetryHub,
    TimeSeries,
    build_manifest,
    config_digest,
    lifecycle_by_flit,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.trace_export import DELIVER, GRANT, INJECT


class TestTimeSeries:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TimeSeries("x", capacity=0)

    def test_ring_drops_oldest_but_aggregate_keeps_all(self):
        series = TimeSeries("x", capacity=3)
        for t in range(5):
            series.append(t, float(t))
        assert len(series) == 3
        assert series.dropped == 2
        assert [t for t, _ in series.samples()] == [2, 3, 4]
        # The whole-run aggregate still covers the dropped samples.
        assert series.stats.count == 5
        assert series.stats.mean == pytest.approx(2.0)

    def test_latest(self):
        series = TimeSeries("x")
        assert series.latest() is None
        series.append(7, 1.5)
        assert series.latest() == (7, 1.5)

    def test_to_dict_round_trips_through_json(self):
        series = TimeSeries("x", capacity=2)
        series.append(1, 2.0)
        record = json.loads(json.dumps(series.to_dict()))
        assert record["name"] == "x"
        assert record["count"] == 1
        assert record["samples"] == [[1, 2.0]]

    def test_empty_series_has_null_extremes(self):
        record = TimeSeries("x").to_dict()
        assert record["min"] is None and record["max"] is None


class TestTelemetryHub:
    def test_channel_registers_on_access(self):
        hub = TelemetryHub()
        channel = hub.channel("a")
        hub.sample("a", 1, 5.0)
        # The handle from before the first sample sees the sample.
        assert channel.stats.count == 1
        assert hub.channel("a") is channel
        assert "a" in hub

    def test_names_sorted(self):
        hub = TelemetryHub()
        hub.sample("b", 0, 0.0)
        hub.sample("a", 0, 0.0)
        assert hub.names() == ["a", "b"]

    def test_clear(self):
        hub = TelemetryHub()
        hub.sample("a", 0, 0.0)
        hub.clear()
        assert len(hub) == 0 and "a" not in hub


class TestManifest:
    def test_schema_and_provenance_fields(self):
        manifest = build_manifest(seed=9, command="test")
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["seed"] == 9
        assert manifest["command"] == "test"
        assert "python" in manifest and "created_iso" in manifest

    def test_config_digest_is_stable_and_discriminating(self):
        a = RouterConfig()
        b = RouterConfig()
        assert config_digest(a) == config_digest(b)
        c = RouterConfig(num_ports=4)
        assert config_digest(a) != config_digest(c)

    def test_manifest_embeds_dataclass_config(self):
        manifest = build_manifest(config=RouterConfig())
        assert manifest["config_digest"] == config_digest(RouterConfig())
        assert manifest["config"]["num_ports"] == RouterConfig().num_ports

    def test_manifest_is_json_safe(self):
        json.dumps(build_manifest(seed=1, config=RouterConfig(), extra={"k": 2}))


class TestKernelProfiler:
    def test_simulator_integration_accounts_every_cycle(self):
        recorder = FlightRecorder(manifest={})
        sim, _router = build_cbr_scenario(True, 1, recorder=recorder)
        sim.run(2000)
        profile = recorder.kernel_snapshot()
        assert (
            profile["stepped_cycles"] + profile["fast_forwarded_cycles"]
            == sim.now
        )
        assert profile["fast_forward_ratio"] > 0.5  # 10% load idles a lot
        names = [t["name"] for t in profile["tickers"] if t["ticks"]]
        assert names  # the router ticker registered with its name
        assert profile["tickers"][0]["seconds"] >= 0.0

    def test_detached_profiler_leaves_simulator_unprofiled(self):
        recorder = FlightRecorder(manifest={})
        recorder.set_enabled(False)
        sim, _router = build_cbr_scenario(True, 1, recorder=recorder)
        sim.run(500)
        assert recorder.profiler.stepped_cycles == 0

    def test_register_pads_sparse_indices(self):
        profiler = KernelProfiler()
        profiler.register(2, "late")
        assert [t.name for t in profiler.tickers] == ["ticker0", "ticker1", "late"]


class TestFlightRecorder:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0, manifest={})

    def test_trace_buffer_drops_when_full(self):
        recorder = FlightRecorder(capacity=2, manifest={})
        for t in range(4):
            recorder.flit_inject(t, 0, 0, 1, t)
        assert len(recorder.events) == 2
        assert recorder.dropped == 2

    def test_clear_resets_everything(self):
        recorder = FlightRecorder(manifest={})
        recorder.flit_inject(0, 0, 0, 1, 1)
        recorder.sample("ch", 0, 1.0)
        recorder.clear()
        assert recorder.events == []
        assert recorder.dropped == 0
        assert len(recorder.telemetry) == 0

    def test_null_recorder_cannot_be_enabled(self):
        assert NULL_RECORDER.enabled is False
        with pytest.raises(RuntimeError):
            NULL_RECORDER.set_enabled(True)
        NULL_RECORDER.set_enabled(False)  # no-op, allowed

    def test_null_recorder_discards_everything(self):
        NULL_RECORDER.flit_inject(0, 0, 0, 1, 1)
        NULL_RECORDER.sample("ch", 0, 1.0)
        assert NULL_RECORDER.events == []
        assert len(NULL_RECORDER.telemetry) == 0


class TestChromeTraceExport:
    def lifecycle_events(self):
        return [
            (INJECT, 0, 2, 1, 7, 100),
            (GRANT, 3, 2, 1, 7, 100),
            (DELIVER, 5, 4, 5, 7, 100),
        ]

    def test_lifecycle_becomes_span_plus_instants(self):
        payload = to_chrome_trace(self.lifecycle_events())
        counts = validate_chrome_trace(payload)
        assert counts["i"] == 3
        assert counts["b"] == 1 and counts["e"] == 1
        spans = [e for e in payload["traceEvents"] if e["ph"] in "be"]
        assert all(e["id"] == 100 for e in spans)
        begin, end = spans
        assert begin["ts"] == 0 and end["ts"] == 5
        assert begin["tid"] == 2  # the input port's track

    def test_manifest_rides_in_metadata(self):
        payload = to_chrome_trace([], manifest={"seed": 3})
        assert payload["metadata"] == {"seed": 3}
        validate_chrome_trace(payload)

    def test_telemetry_becomes_counter_events(self):
        telemetry = {"r.util": {"samples": [[10, 0.5], [20, 0.75]]}}
        payload = to_chrome_trace([], telemetry=telemetry)
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert [e["args"]["value"] for e in counters] == [0.5, 0.75]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            to_chrome_trace([(99, 0, 0, 0, -1, -1)])

    def test_validator_rejects_malformed_payloads(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])  # not an object
        with pytest.raises(ValueError):
            validate_chrome_trace({})  # no traceEvents
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1, "tid": 1}]}
            )
        with pytest.raises(ValueError, match="'id'"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"ph": "b", "name": "x", "pid": 1, "tid": 1, "ts": 0}
                    ]
                }
            )

    def test_lifecycle_by_flit_orders_kind_names(self):
        assert lifecycle_by_flit(self.lifecycle_events()) == {
            100: ["inject", "grant", "deliver"]
        }


class TestHarnessIntegration:
    SPEC = dict(
        target_load=0.4,
        seed=3,
        warmup_cycles=600,
        measure_cycles=1500,
    )

    def test_recorder_off_by_default(self):
        result = run_single_router_experiment(ExperimentSpec(**self.SPEC))
        assert result.recorder is None

    def test_telemetry_run_populates_recorder(self):
        result = run_single_router_experiment(
            ExperimentSpec(telemetry=True, **self.SPEC)
        )
        recorder = result.recorder
        assert recorder is not None
        assert recorder.manifest["seed"] == 3
        assert recorder.manifest["schema"] == MANIFEST_SCHEMA
        # Warm-up samples were discarded; measurement samples remain.
        channels = recorder.telemetry.names()
        assert any(name.endswith("link_utilisation") for name in channels)
        assert any(name.endswith("cbr_cycles_consumed") for name in channels)
        utilisation = next(
            recorder.telemetry.channel(name)
            for name in channels
            if name.endswith("link_utilisation")
        )
        assert 0.0 <= utilisation.stats.mean <= 1.0
        # The trace validates and covers delivered flits end to end.
        payload = recorder.chrome_trace()
        counts = validate_chrome_trace(json.loads(json.dumps(payload)))
        assert counts.get("b", 0) > 0
        lifecycles = lifecycle_by_flit(recorder.events)
        delivered = [
            kinds for kinds in lifecycles.values() if "deliver" in kinds
        ]
        assert delivered
        # Flits in flight when warm-up samples were discarded carry a
        # truncated prefix, so only suffixes of the full chain may appear
        # (completeness on a clear recorder is proven by the perf gate).
        allowed = (
            ["inject", "grant", "deliver"],
            ["grant", "deliver"],
            ["deliver"],
        )
        assert all(kinds in allowed for kinds in delivered)
        assert ["inject", "grant", "deliver"] in delivered

    def test_reenabled_telemetry_resumes_with_one_round_windows(self):
        # Regression: the disabled early-out in sample_round skipped the
        # per-router window baselines too, so the first sample after
        # TelemetryHub.set_enabled(True) lumped the whole disabled span
        # into one delta.  Post-fix the first boundary re-baselines
        # silently and every emitted sample matches a never-disabled run.
        spec = ExperimentSpec(telemetry=True, **self.SPEC)
        ref = SingleRouterExperiment(spec)
        ref.run_to(ref.total_cycles)

        toggled = SingleRouterExperiment(spec)
        toggled.run_to(900)
        toggled.recorder.telemetry.set_enabled(False)
        toggled.run_to(1500)
        toggled.recorder.telemetry.set_enabled(True)
        toggled.run_to(toggled.total_cycles)

        hub = toggled.recorder.telemetry
        ref_hub = ref.recorder.telemetry
        checked = 0
        for name in hub.names():
            if not (
                name.endswith("switch_grants")
                or name.endswith("link_utilisation")
            ):
                continue
            ref_points = dict(ref_hub.channel(name).samples())
            for time, value in hub.channel(name).samples():
                if time < 900:
                    continue  # identical prefix by construction
                assert ref_points[time] == value, (name, time)
                checked += 1
        assert checked, "no post-enable samples — vacuous regression test"

    def test_export_is_json_safe_and_carries_manifest(self):
        result = run_single_router_experiment(
            ExperimentSpec(telemetry=True, **self.SPEC)
        )
        export = json.loads(json.dumps(result.recorder.export()))
        assert export["manifest"]["schema"] == MANIFEST_SCHEMA
        assert export["trace"]["traceEvents"]
        assert export["kernel"]["sim_now"] > 0


class TestDroppedSurfacing:
    """Per-store dropped counters must be visible, not silently absorbed."""

    def test_dropped_summary_names_every_store(self):
        recorder = FlightRecorder(capacity=2, manifest={})
        for t in range(4):
            recorder.flit_inject(t, 0, 0, 1, t)
        ring = recorder.telemetry.channel("small")
        ring.capacity = 1
        recorder.sample("small", 0, 1.0)
        recorder.sample("small", 1, 2.0)
        recorder.spans.capacity = 1
        recorder.spans.begin("a", "x", 0)
        recorder.spans.begin("b", "x", 0)
        summary = recorder.dropped_summary()
        assert summary["trace"] == 2
        assert summary["spans"] == 1
        assert summary["channels"] == {"small": 1}
        assert summary["total"] == 4

    def test_clean_recorder_certifies_no_truncation(self):
        recorder = FlightRecorder(manifest={})
        recorder.flit_inject(0, 0, 0, 1, 1)
        recorder.sample("ch", 0, 1.0)
        summary = recorder.dropped_summary()
        assert summary == {
            "trace": 0, "spans": 0, "channels": {}, "total": 0,
        }

    def test_clear_resets_span_store_too(self):
        recorder = FlightRecorder(manifest={})
        span = recorder.spans.begin("a", "x", 0)
        recorder.spans.end(span, 5)
        recorder.clear()
        assert len(recorder.spans) == 0
        assert recorder.dropped_summary()["total"] == 0

    def test_export_carries_spans_and_dropped(self):
        recorder = FlightRecorder(manifest={"schema": "x"})
        span = recorder.spans.begin("session 1", "session", 0)
        recorder.spans.end(span, 10)
        export = json.loads(json.dumps(recorder.export()))
        assert export["span_count"] == 1
        assert export["spans_open"] == 0
        (record,) = export["spans"]
        assert record["name"] == "session 1"
        assert record["duration"] == 10
        assert export["dropped"]["total"] == 0
        # Spans ride in the Chrome trace on the control-plane pid.
        span_events = [
            e for e in export["trace"]["traceEvents"] if e["ph"] == "X"
        ]
        assert len(span_events) == 1 and span_events[0]["pid"] == 2
