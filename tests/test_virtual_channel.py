"""Tests for virtual channel state and buffer semantics."""

import pytest

from repro.core.flit import Flit, FlitType
from repro.core.virtual_channel import ServiceClass, VirtualChannel


def make_vc(capacity=4):
    return VirtualChannel(port=0, index=5, capacity=capacity)


def data_flit(created=0):
    return Flit(FlitType.DATA, connection_id=1, created=created)


class TestBinding:
    def test_starts_free(self):
        vc = make_vc()
        assert vc.is_free
        assert vc.connection_id is None

    def test_bind_sets_connection_state(self):
        vc = make_vc()
        vc.bind(7, ServiceClass.CBR, output_port=3, output_vc=11)
        assert vc.connection_id == 7
        assert vc.service_class is ServiceClass.CBR
        assert vc.output_port == 3
        assert vc.output_vc == 11
        assert not vc.is_free

    def test_double_bind_rejected(self):
        vc = make_vc()
        vc.bind(1, ServiceClass.CBR, 0)
        with pytest.raises(RuntimeError):
            vc.bind(2, ServiceClass.CBR, 0)

    def test_release_resets_everything(self):
        vc = make_vc()
        vc.bind(1, ServiceClass.VBR, 2, 3)
        vc.allocated_cycles = 5
        vc.permanent_cycles = 3
        vc.peak_cycles = 9
        vc.static_priority = 0.7
        vc.interarrival_cycles = 10.0
        vc.serviced_this_round = 2
        vc.history.add(4)
        vc.release()
        assert vc.is_free
        assert vc.allocated_cycles == 0
        assert vc.permanent_cycles == 0
        assert vc.peak_cycles == 0
        assert vc.static_priority == 0.0
        assert vc.interarrival_cycles == 1.0
        assert vc.serviced_this_round == 0
        assert not vc.history

    def test_release_with_buffered_flits_rejected(self):
        vc = make_vc()
        vc.bind(1, ServiceClass.CBR, 0)
        vc.enqueue(data_flit(), now=0)
        with pytest.raises(RuntimeError):
            vc.release()


class TestBuffer:
    def test_enqueue_dequeue_fifo(self):
        vc = make_vc()
        flits = [data_flit() for _ in range(3)]
        for f in flits:
            vc.enqueue(f, now=0)
        out = [vc.dequeue(now=1) for _ in range(3)]
        assert out == flits

    def test_head_without_removal(self):
        vc = make_vc()
        f = data_flit()
        vc.enqueue(f, now=0)
        assert vc.head() is f
        assert vc.occupancy == 1

    def test_head_empty_is_none(self):
        assert make_vc().head() is None

    def test_overflow_raises(self):
        vc = make_vc(capacity=2)
        vc.enqueue(data_flit(), now=0)
        vc.enqueue(data_flit(), now=0)
        assert vc.is_full
        with pytest.raises(RuntimeError):
            vc.enqueue(data_flit(), now=0)

    def test_underflow_raises(self):
        with pytest.raises(RuntimeError):
            make_vc().dequeue(now=0)

    def test_ready_time_stamped_when_head(self):
        vc = make_vc()
        first = data_flit(created=5)
        second = data_flit(created=5)
        vc.enqueue(first, now=5)
        vc.enqueue(second, now=6)
        assert first.ready_time == 5
        assert second.ready_time is None
        vc.dequeue(now=9)
        assert second.ready_time == 9

    def test_ready_time_of_enqueue_into_empty(self):
        vc = make_vc()
        f = data_flit(created=2)
        vc.enqueue(f, now=4)
        assert f.ready_time == 4

    def test_occupancy_tracking(self):
        vc = make_vc(capacity=3)
        assert vc.occupancy == 0
        vc.enqueue(data_flit(), now=0)
        vc.enqueue(data_flit(), now=0)
        assert vc.occupancy == 2
        vc.dequeue(now=1)
        assert vc.occupancy == 1
        assert not vc.is_full

    def test_repr(self):
        vc = make_vc()
        assert "port=0" in repr(vc)
        assert "index=5" in repr(vc)
