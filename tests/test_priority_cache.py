"""Regression tests: the priority-term cache vs mid-flight control words.

The fused and columnar candidate scans cache each VC's priority terms
while the same head flit sits parked under the same connection.  A
SET_PRIORITY / SET_BANDWIDTH control word (or a teardown-and-readmission
reusing the VC) changes the inputs of that computation *without* moving
the head flit, so every such site must drop the cached terms — the
reference walk recomputes from scratch each cycle and is the oracle.
"""

import pytest

from repro.core.config import RouterConfig
from repro.core.flit import Flit, FlitType
from repro.core.link_scheduler import LinkScheduler
from repro.core.priority import BiasedPriority, StaticConnectionPriority
from repro.core.status_vectors import StatusBank
from repro.core.virtual_channel import ServiceClass, VirtualChannel
from repro.harness.churn import ChurnSpec, run_churn_experiment
from repro.sim.rng import SeededRng


def build_scheduler(scheme):
    config = RouterConfig(
        num_ports=4, vcs_per_port=8, enforce_round_budgets=False
    )
    vcs = [VirtualChannel(0, i, config.vc_buffer_flits) for i in range(8)]
    status = StatusBank(8)
    scheduler = LinkScheduler(
        0,
        config,
        vcs,
        status,
        scheme,
        credit_check=lambda port, vc: True,
        selection="per_output",
        rng=SeededRng(5, "cache"),
    )
    return scheduler, vcs, status


def park_flit(vcs, status, index, interarrival=100.0, static=0.25):
    vc = vcs[index]
    vc.bind(700 + index, ServiceClass.CBR, 1)
    vc.interarrival_cycles = interarrival
    vc.static_priority = static
    vc.enqueue(
        Flit(FlitType.DATA, connection_id=700 + index, created=0), now=0
    )
    status.vector("flits_available").set(index)
    status.vector("connection_active").set(index)
    status.vector("routed").set(index)
    return vc


def reference_candidates(scheduler, now):
    saved = scheduler.fast_path
    scheduler.fast_path = False
    try:
        return scheduler.candidates(now)
    finally:
        scheduler.fast_path = saved


class TestRenegotiationInvalidatesCache:
    def test_stale_terms_without_invalidation(self):
        """The pre-fix failure mode: a parked head flit keeps competing
        under the old rate's bias after a renegotiation, because the
        cache key (head-flit identity, connection id) never changed."""
        scheduler, vcs, status = build_scheduler(BiasedPriority())
        vc = park_flit(vcs, status, 2, interarrival=100.0)
        assert scheduler.candidates(50) == reference_candidates(scheduler, 50)
        vc.interarrival_cycles = 4.0  # SET_BANDWIDTH, cache not dropped
        assert scheduler.candidates(60) != reference_candidates(scheduler, 60)

    def test_invalidate_vc_restores_identity(self):
        scheduler, vcs, status = build_scheduler(BiasedPriority())
        vc = park_flit(vcs, status, 2, interarrival=100.0)
        scheduler.candidates(50)  # populate the cache
        vc.interarrival_cycles = 4.0
        scheduler.invalidate_vc(vc)
        fast = scheduler.candidates(60)
        assert fast == reference_candidates(scheduler, 60)
        assert fast[0].priority == pytest.approx(60 / 4.0)

    def test_static_priority_rewrite_invalidates(self):
        """SET_PRIORITY under a static scheme: same flit, new base."""
        scheduler, vcs, status = build_scheduler(StaticConnectionPriority())
        vc = park_flit(vcs, status, 1, static=0.25)
        before = scheduler.candidates(10)
        assert before == reference_candidates(scheduler, 10)
        vc.static_priority = 0.75
        scheduler.invalidate_vc(vc)
        after = scheduler.candidates(11)
        assert after == reference_candidates(scheduler, 11)
        assert after[0].priority != before[0].priority

    def test_connection_id_leg_catches_readmission(self):
        """A torn-down-and-readmitted connection on the same VC must not
        inherit the old terms even if the head-flit object is reused."""
        scheduler, vcs, status = build_scheduler(StaticConnectionPriority())
        vc = park_flit(vcs, status, 3, static=0.9)
        scheduler.candidates(5)
        # Same Flit object parked, but the VC now belongs to a different
        # connection with a different static priority (the reallocation
        # race the (vc, flit, connection) cache key exists for).
        vc.connection_id = 900
        vc.static_priority = 0.1
        fast = scheduler.candidates(6)
        assert fast == reference_candidates(scheduler, 6)
        assert fast[0].priority == pytest.approx(
            reference_candidates(scheduler, 6)[0].priority
        )


class TestChurnDrivenIdentity:
    def test_renegotiating_churn_fast_path_matches_reference(self):
        """Churn with heavy renegotiation over parked flits: the fused
        scan must reproduce the reference walk's workload bit for bit.
        Fails pre-fix: renegotiate_bandwidth rewrites interarrival while
        head flits sit buffered, and without invalidation the fast path
        schedules them under stale bias."""
        kwargs = dict(
            num_sessions=120,
            num_nodes=6,
            mean_interarrival_cycles=120.0,
            mean_holding_cycles=6000.0,
            vbr_fraction=0.3,
            renegotiation_fraction=0.9,
            seed=23,
        )
        reference = run_churn_experiment(
            ChurnSpec(scheduler_fast_path=False, **kwargs)
        )
        fast = run_churn_experiment(
            ChurnSpec(scheduler_fast_path=True, **kwargs)
        )
        for field in (
            "established",
            "blocked",
            "torn_down",
            "flits_delivered",
            "renegotiations_applied",
            "renegotiations_refused",
            "mean_delay_cycles",
            "mean_jitter_cycles",
            "setup_p99",
            "leak_free",
        ):
            assert getattr(reference, field) == getattr(fast, field), field
        assert reference.renegotiations_applied > 0
