"""Tests for the checkpoint/restore subsystem: the ``ckpt/1`` codec
(format, schema versioning, provenance checks), simulator snapshots, and
resumable single-router experiments."""

import pickle

import pytest

from repro.ckpt.codec import (
    CKPT_SCHEMA,
    MAGIC,
    CheckpointCodec,
    CheckpointError,
    CheckpointFormatError,
    CheckpointMismatchError,
    CheckpointSchemaError,
)
from repro.core.config import RouterConfig
from repro.harness.kernel_bench import build_cbr_scenario
from repro.harness.single_router import (
    ExperimentSpec,
    SingleRouterExperiment,
    run_single_router_experiment,
)
from repro.obs.manifest import config_digest
from repro.sim.engine import Simulator

TINY = RouterConfig(num_ports=4, vcs_per_port=32, enforce_round_budgets=False)


def tiny_spec(**overrides):
    base = dict(
        target_load=0.4,
        config=TINY,
        candidates=4,
        seed=3,
        warmup_cycles=300,
        measure_cycles=1500,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def result_fingerprint(result):
    """The scalar outcome of an experiment, for identity comparison."""
    return (
        result.connections,
        result.summary,
        result.per_connection,
        result.utilisation,
        result.max_interface_backlog,
    )


class TestCodecRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "state.ckpt"
        components = {"numbers": [1, 2, 3], "label": "midpoint"}
        written = CheckpointCodec.save(
            path, components, kind="test", cycle=42, seed=9, config=TINY
        )
        header, loaded = CheckpointCodec.load(path, expect_kind="test")
        assert loaded == components
        assert header == written
        assert header.schema == CKPT_SCHEMA
        assert header.cycle == 42
        assert header.seed == 9
        assert header.config_digest == config_digest(TINY)
        assert set(header.sections) == {"numbers", "label"}
        assert all(size > 0 for size in header.sections.values())

    def test_save_is_atomic(self, tmp_path):
        path = tmp_path / "state.ckpt"
        CheckpointCodec.save(path, {"v": 1}, kind="test", cycle=0)
        CheckpointCodec.save(path, {"v": 2}, kind="test", cycle=1)
        _, loaded = CheckpointCodec.load(path)
        assert loaded == {"v": 2}
        assert list(tmp_path.iterdir()) == [path]  # no .tmp left behind

    def test_header_carries_provenance(self, tmp_path):
        path = tmp_path / "state.ckpt"
        CheckpointCodec.save(
            path, {"v": 1}, kind="test", cycle=5, extra={"note": "hi"}
        )
        header = CheckpointCodec.read_header(path)
        assert header.manifest["command"] == "ckpt.save[test]"
        assert header.manifest["note"] == "hi"  # extra fields are flattened

    def test_accepts_digest_string_for_expect_config(self, tmp_path):
        path = tmp_path / "state.ckpt"
        CheckpointCodec.save(path, {"v": 1}, kind="test", cycle=0, config=TINY)
        CheckpointCodec.load(path, expect_config=config_digest(TINY))

    def test_rejects_unpicklable_component(self, tmp_path):
        with pytest.raises(CheckpointError) as excinfo:
            CheckpointCodec.save(
                tmp_path / "bad.ckpt",
                {"handler": lambda: None},
                kind="test",
                cycle=0,
            )
        assert "not picklable" in str(excinfo.value)
        assert not (tmp_path / "bad.ckpt").exists()


class TestHeaderOnlyReads:
    """read_header/inspect must never unpickle the payload."""

    def _write_raw(self, path, header_line: bytes, payload: bytes):
        with open(path, "wb") as handle:
            handle.write(MAGIC)
            handle.write(header_line)
            handle.write(b"\n")
            handle.write(payload)

    def test_inspect_never_unpickles(self, tmp_path):
        # The payload is NOT valid pickle; header-only reads must still
        # succeed because they never touch it.
        import hashlib
        import json

        payload = b"\x00definitely-not-a-pickle"
        header = {
            "schema": CKPT_SCHEMA,
            "kind": "test",
            "cycle": 7,
            "seed": None,
            "config_digest": None,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "sections": {},
            "manifest": {},
        }
        path = tmp_path / "opaque.ckpt"
        self._write_raw(path, json.dumps(header).encode(), payload)
        assert CheckpointCodec.read_header(path).cycle == 7
        summary = CheckpointCodec.inspect(path)
        assert summary["kind"] == "test"
        assert summary["payload_bytes"] == len(payload)
        # Only a full load attempts the unpickle, and it fails loudly.
        with pytest.raises(CheckpointFormatError, match="failed to unpickle"):
            CheckpointCodec.load(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "notckpt"
        path.write_bytes(b"garbage bytes, not a checkpoint")
        with pytest.raises(CheckpointFormatError, match="bad magic"):
            CheckpointCodec.read_header(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "trunc.ckpt"
        path.write_bytes(MAGIC + b'{"schema": "ckpt/1"')  # no newline
        with pytest.raises(CheckpointFormatError, match="truncated"):
            CheckpointCodec.read_header(path)

    def test_header_not_json(self, tmp_path):
        path = tmp_path / "badjson.ckpt"
        self._write_raw(path, b"not json at all", b"")
        with pytest.raises(CheckpointFormatError, match="not valid JSON"):
            CheckpointCodec.read_header(path)


class TestSchemaAndProvenanceChecks:
    def _rewrite_header(self, path, mutate):
        """Edit one field of an existing checkpoint's header in place."""
        import json

        raw = path.read_bytes()
        body = raw[len(MAGIC):]
        header_line, payload = body.split(b"\n", 1)
        record = json.loads(header_line)
        mutate(record)
        path.write_bytes(MAGIC + json.dumps(record).encode() + b"\n" + payload)

    def test_unknown_schema_names_both_versions(self, tmp_path):
        path = tmp_path / "future.ckpt"
        CheckpointCodec.save(path, {"v": 1}, kind="test", cycle=0)
        self._rewrite_header(path, lambda r: r.update(schema="ckpt/999"))
        with pytest.raises(CheckpointSchemaError) as excinfo:
            CheckpointCodec.read_header(path)
        assert excinfo.value.found == "ckpt/999"
        assert excinfo.value.expected == CKPT_SCHEMA
        assert "ckpt/999" in str(excinfo.value)
        assert CKPT_SCHEMA in str(excinfo.value)

    def test_kind_mismatch(self, tmp_path):
        path = tmp_path / "state.ckpt"
        CheckpointCodec.save(path, {"v": 1}, kind="network", cycle=0)
        with pytest.raises(CheckpointMismatchError) as excinfo:
            CheckpointCodec.load(path, expect_kind="single_router")
        assert excinfo.value.found == "network"
        assert excinfo.value.expected == "single_router"

    def test_config_digest_mismatch_names_both_digests(self, tmp_path):
        path = tmp_path / "state.ckpt"
        CheckpointCodec.save(path, {"v": 1}, kind="test", cycle=0, config=TINY)
        other = TINY.with_(vcs_per_port=64)
        with pytest.raises(CheckpointMismatchError) as excinfo:
            CheckpointCodec.load(path, expect_config=other)
        message = str(excinfo.value)
        assert config_digest(TINY) in message
        assert config_digest(other) in message

    def test_corrupt_payload_checksum(self, tmp_path):
        path = tmp_path / "state.ckpt"
        CheckpointCodec.save(path, {"v": 1}, kind="test", cycle=0)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip one payload byte, length unchanged
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointFormatError, match="checksum"):
            CheckpointCodec.load(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "state.ckpt"
        CheckpointCodec.save(path, {"v": 1}, kind="test", cycle=0)
        raw = path.read_bytes()
        path.write_bytes(raw[:-3])
        with pytest.raises(CheckpointFormatError, match="truncated or corrupt"):
            CheckpointCodec.load(path)


class TestSimulatorSnapshot:
    def test_snapshot_restore_is_bit_identical(self):
        delivered_a, delivered_b = [], []
        sim_a, _ = build_cbr_scenario(True, connections=8, delivered=delivered_a)
        sim_b, _ = build_cbr_scenario(True, connections=8, delivered=delivered_b)
        sim_a.run(600)

        sim_b.run(300)
        blob = sim_b.snapshot()
        midpoint = len(delivered_b)
        restored = Simulator.restore(blob)
        restored.run(300)

        # The restored kernel finds the same delivery log through its own
        # pickled component graph and extends it identically.
        restored_log = delivered_b[:midpoint] + self._restored_records(
            restored, midpoint
        )
        assert restored_log == delivered_a

    @staticmethod
    def _restored_records(restored_sim, midpoint):
        # The DeliveryLog is reachable from the restored graph: the router
        # is a registered ticker, and its output handlers share one log.
        for ticker in restored_sim._tickers:  # noqa: SLF001 - test introspection
            owner = getattr(ticker.tick, "__self__", None)
            handlers = getattr(owner, "output_handlers", None) or []
            logs = [h for h in handlers if h is not None]
            if logs:
                return logs[0].records[midpoint:]
        raise AssertionError("restored graph has no router output handlers")

    def test_restored_simulator_is_detached(self):
        delivered = []
        sim, _ = build_cbr_scenario(True, connections=4, delivered=delivered)
        sim.run(200)
        blob = sim.snapshot()
        count = len(delivered)
        restored = Simulator.restore(blob)
        restored.run(200)
        # Running the copy never mutates the original's delivery log.
        assert len(delivered) == count

    def test_snapshot_mid_tick_is_refused(self):
        sim = Simulator()
        failures = []

        class Snapshotter:
            def __init__(self, sim):
                self.sim = sim

            def tick(self, cycle):
                try:
                    self.sim.snapshot()
                except RuntimeError as exc:
                    failures.append(str(exc))

        sim.add_ticker(Snapshotter(sim).tick)
        sim.run(1)
        assert failures and "ticker context" in failures[0]

    def test_restore_rejects_non_simulator(self):
        blob = pickle.dumps({"not": "a simulator"})
        with pytest.raises(TypeError):
            Simulator.restore(blob)


class TestSingleRouterCheckpoint:
    def test_midpoint_resume_is_bit_identical(self, tmp_path):
        spec = tiny_spec()
        straight = SingleRouterExperiment(spec).result()

        experiment = SingleRouterExperiment(spec)
        experiment.run_to(900)
        path = tmp_path / "mid.ckpt"
        header = experiment.checkpoint(path)
        assert header.cycle == 900
        del experiment
        resumed = SingleRouterExperiment.resume(path, expect_spec=spec)
        assert resumed.now == 900
        assert result_fingerprint(resumed.result()) == result_fingerprint(straight)

    def test_resume_refuses_wrong_spec(self, tmp_path):
        spec = tiny_spec()
        experiment = SingleRouterExperiment(spec)
        experiment.run_to(400)
        path = tmp_path / "mid.ckpt"
        experiment.checkpoint(path)
        # Same config digest, different spec (seed): caught after load.
        with pytest.raises(CheckpointMismatchError, match="spec"):
            SingleRouterExperiment.resume(path, expect_spec=tiny_spec(seed=4))
        # Different config: caught on the digest, before any unpickle.
        other = tiny_spec(config=TINY.with_(vcs_per_port=64))
        with pytest.raises(CheckpointMismatchError, match="config digest"):
            SingleRouterExperiment.resume(path, expect_spec=other)

    def test_run_to_rejects_backwards(self):
        experiment = SingleRouterExperiment(tiny_spec())
        experiment.run_to(500)
        with pytest.raises(ValueError, match="backwards"):
            experiment.run_to(100)

    def test_warmup_reset_happens_once_across_resume(self, tmp_path):
        # Checkpoint exactly at the warm-up boundary: the resumed run must
        # not reset statistics a second time.
        spec = tiny_spec()
        experiment = SingleRouterExperiment(spec)
        experiment.run_to(spec.warmup_cycles)
        assert experiment._measurement_started  # noqa: SLF001
        path = tmp_path / "boundary.ckpt"
        experiment.checkpoint(path)
        resumed = SingleRouterExperiment.resume(path)
        assert resumed._measurement_started  # noqa: SLF001
        straight = SingleRouterExperiment(spec).result()
        assert result_fingerprint(resumed.result()) == result_fingerprint(straight)

    def test_wrapper_periodic_checkpoints_record_lineage(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "run.ckpt"
        result = run_single_router_experiment(
            spec, checkpoint_every=600, checkpoint_path=path
        )
        plain = run_single_router_experiment(spec)
        assert result_fingerprint(result) == result_fingerprint(plain)
        lineage = result.checkpoint
        assert lineage["schema"] == CKPT_SCHEMA
        assert lineage["resumed_from_cycle"] is None
        assert lineage["checkpoints_written"] >= 2
        assert path.exists()

    def test_wrapper_requires_path(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            run_single_router_experiment(tiny_spec(), checkpoint_every=500)

    def test_wrapper_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="positive"):
            run_single_router_experiment(
                tiny_spec(), checkpoint_every=0, checkpoint_path="x.ckpt"
            )
