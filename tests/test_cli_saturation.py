"""Tests for the CLI and the saturation-point finder."""

import json

import pytest

from repro.cli import main
from repro.core.config import RouterConfig
from repro.harness.saturation import (
    SaturationCriteria,
    find_saturation_load,
    is_saturated,
)
from repro.harness.single_router import ExperimentSpec, run_single_router_experiment

# K=8 keeps 512-cycle rounds so the load planner can pack links tightly
# (coarser rounds waste capacity to ceil-rounding and cap offered load).
TINY = RouterConfig(
    num_ports=4, vcs_per_port=64, round_factor=8, enforce_round_budgets=False
)
TINY_CYCLES = dict(warmup_cycles=1000, measure_cycles=4000)


class TestSaturationJudgement:
    def run(self, load, **overrides):
        kwargs = dict(
            target_load=load, config=TINY, candidates=8, seed=3, **TINY_CYCLES
        )
        kwargs.update(overrides)
        return run_single_router_experiment(ExperimentSpec(**kwargs))

    def test_light_load_is_stable(self):
        result = self.run(0.3)
        assert not is_saturated(result)

    def test_single_candidate_high_load_saturates(self):
        result = self.run(0.9, candidates=1)
        assert is_saturated(result)

    def test_criteria_thresholds(self):
        result = self.run(0.3)
        strict = SaturationCriteria(utilisation_slack=-1.0)
        assert is_saturated(result, strict)  # impossible slack trips it


class TestFindSaturationLoad:
    def base(self, candidates):
        return ExperimentSpec(
            target_load=0.5, config=TINY, candidates=candidates, seed=3,
            **TINY_CYCLES,
        )

    def test_bisection_brackets(self):
        estimate = find_saturation_load(
            self.base(candidates=1), low=0.3, high=0.95, tolerance=0.1
        )
        assert 0.0 <= estimate.stable_load < estimate.saturated_load <= 1.0
        assert estimate.stable_load <= estimate.estimate <= estimate.saturated_load
        # C=1 head-of-line blocking saturates an 8-port... here 4-port
        # router well below full load.
        assert estimate.estimate < 0.95

    def test_never_saturated_reports_high(self):
        estimate = find_saturation_load(
            self.base(candidates=8), low=0.3, high=0.7, tolerance=0.1
        )
        assert estimate.stable_load == 0.7
        assert estimate.saturated_load == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            find_saturation_load(self.base(8), low=0.9, high=0.5)


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "virtual channels / port: 256" in out
        assert "103.2" in out

    def test_run_json(self, capsys):
        code = main([
            "run", "--load", "0.4", "--cycles", "1500", "--warmup", "300",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["offered_load"] == pytest.approx(0.4, abs=0.02)
        assert payload["utilisation"] > 0.3

    def test_run_plain(self, capsys):
        code = main(["run", "--load", "0.4", "--cycles", "1500", "--warmup", "300"])
        assert code == 0
        assert "mean_delay_us" in capsys.readouterr().out

    def test_run_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            main(["run", "--scheduler", "magic"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_network_command(self, capsys):
        code = main([
            "network", "--link-load", "0.25", "--nodes", "6",
            "--warmup", "500", "--cycles", "2000", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["streams"] > 0
        assert payload["mean_delay_cycles"] > 0
