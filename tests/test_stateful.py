"""Stateful property tests (hypothesis rule-based state machines).

These drive the resource-management substrates — bandwidth registers,
credit flow control, channel mappings, VC pools — through long random
operation sequences, checking their invariants after every step.  The
invariants are exactly the ones the router relies on for correctness.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.bandwidth import BandwidthAllocator, BandwidthRequest
from repro.core.flow_control import LinkFlowControl
from repro.core.rau import ChannelMappingStore
from repro.core.router import InputPort
from repro.core.config import RouterConfig
from repro.core.virtual_channel import ServiceClass


class BandwidthMachine(RuleBasedStateMachine):
    """Allocate/release/renegotiate against a model of live requests."""

    def __init__(self):
        super().__init__()
        self.allocator = BandwidthAllocator(
            round_length=128, concurrency_factor=2.0
        )
        self.live = []

    @rule(permanent=st.integers(1, 40), extra=st.integers(0, 60))
    def allocate(self, permanent, extra):
        request = BandwidthRequest(permanent, permanent + extra if extra else 0)
        if self.allocator.allocate(request):
            self.live.append(request)

    @precondition(lambda self: self.live)
    @rule(index=st.integers(0, 10**6))
    def release(self, index):
        request = self.live.pop(index % len(self.live))
        self.allocator.release(request)

    @precondition(lambda self: self.live)
    @rule(index=st.integers(0, 10**6), permanent=st.integers(1, 40))
    def renegotiate(self, index, permanent):
        index %= len(self.live)
        old = self.live[index]
        new = BandwidthRequest(permanent, max(permanent, old.effective_peak))
        if self.allocator.renegotiate(old, new):
            self.live[index] = new

    @invariant()
    def registers_match_model(self):
        expected_permanent = sum(r.permanent_cycles for r in self.live)
        expected_peak = sum(r.effective_peak for r in self.live if r.is_vbr)
        assert self.allocator.allocated_cycles == expected_permanent
        assert self.allocator.peak_cycles == expected_peak
        assert self.allocator.active_connections == len(self.live)

    @invariant()
    def never_oversubscribed(self):
        assert self.allocator.allocated_cycles <= self.allocator.allocatable_cycles
        assert self.allocator.peak_cycles <= self.allocator.peak_budget


class CreditMachine(RuleBasedStateMachine):
    """Credit consume/replenish against an in-flight counter model."""

    def __init__(self):
        super().__init__()
        self.fc = LinkFlowControl(num_vcs=4, buffer_depth=3)
        self.in_flight = [0] * 4

    @rule(vc=st.integers(0, 3))
    def send(self, vc):
        if self.fc.has_credit(vc):
            self.fc.consume(vc)
            self.in_flight[vc] += 1

    @rule(vc=st.integers(0, 3))
    def drain(self, vc):
        if self.in_flight[vc] > 0:
            self.fc.replenish(vc)
            self.in_flight[vc] -= 1

    @invariant()
    def conservation(self):
        for vc in range(4):
            assert self.fc.credits(vc) + self.in_flight[vc] == 3
            assert self.fc.in_flight(vc) == self.in_flight[vc]
            assert self.fc.credits_available.test(vc) == (self.fc.credits(vc) > 0)


class MappingMachine(RuleBasedStateMachine):
    """Channel-mapping adds/removes stay mirror-consistent."""

    def __init__(self):
        super().__init__()
        self.store = ChannelMappingStore()
        self.model = {}
        self.next_id = 0

    @rule(in_ch=st.tuples(st.integers(0, 3), st.integers(0, 7)),
          out_ch=st.tuples(st.integers(0, 3), st.integers(0, 7)))
    def add(self, in_ch, out_ch):
        if in_ch in self.model or out_ch in set(self.model.values()):
            return
        self.next_id += 1
        self.store.add(self.next_id, in_ch, out_ch)
        self.model[in_ch] = out_ch

    @precondition(lambda self: self.model)
    @rule(index=st.integers(0, 10**6))
    def remove(self, index):
        in_ch = sorted(self.model)[index % len(self.model)]
        removed = self.store.remove_by_input(in_ch)
        assert removed.output_channel == self.model.pop(in_ch)

    @invariant()
    def mirrors_model(self):
        assert len(self.store) == len(self.model)
        for in_ch, out_ch in self.model.items():
            assert self.store.forward(in_ch).output_channel == out_ch
            assert self.store.backward(out_ch).input_channel == in_ch
        self.store.check_consistency()


class VcPoolMachine(RuleBasedStateMachine):
    """InputPort free-VC pool under bind/release churn."""

    def __init__(self):
        super().__init__()
        config = RouterConfig(num_ports=2, vcs_per_port=8)
        self.port = InputPort(0, config)
        self.bound = set()
        self.next_id = 0

    @rule()
    def bind(self):
        vc_index = self.port.find_free_vc()
        if vc_index is None:
            assert len(self.bound) == 8
            return
        self.next_id += 1
        self.port.vcs[vc_index].bind(self.next_id, ServiceClass.CBR, 0)
        self.port.mark_bound(vc_index)
        self.bound.add(vc_index)

    @precondition(lambda self: self.bound)
    @rule(index=st.integers(0, 10**6))
    def release(self, index):
        vc_index = sorted(self.bound)[index % len(self.bound)]
        self.port.vcs[vc_index].release()
        self.port.mark_free(vc_index)
        self.bound.remove(vc_index)

    @invariant()
    def pool_matches_bindings(self):
        assert self.port.free_vc_count() == 8 - len(self.bound)
        for vc in self.port.vcs:
            if vc.index in self.bound:
                assert vc.connection_id is not None
            else:
                assert vc.connection_id is None

    @invariant()
    def lowest_free_first(self):
        free = [i for i in range(8) if i not in self.bound]
        expected = min(free) if free else None
        assert self.port.find_free_vc() == expected


TestBandwidthMachine = BandwidthMachine.TestCase
TestCreditMachine = CreditMachine.TestCase
TestMappingMachine = MappingMachine.TestCase
TestVcPoolMachine = VcPoolMachine.TestCase

for case in (
    TestBandwidthMachine,
    TestCreditMachine,
    TestMappingMachine,
    TestVcPoolMachine,
):
    case.settings = settings(max_examples=25, stateful_step_count=40)
