"""Streaming SLO engine: estimators, budget parsing, online gating."""

import random

import pytest

from repro.obs.slo import (
    P2Quantile,
    SloBudget,
    SloEngine,
    StreamingQuantiles,
    parse_budgets,
    quantile_label,
)


class TestQuantileLabel:
    def test_labels_are_json_key_safe(self):
        assert quantile_label(0.5) == "p50"
        assert quantile_label(0.99) == "p99"
        assert quantile_label(0.999) == "p99_9"


class TestP2Quantile:
    def test_quantile_range_validated(self):
        for q in (0.0, 1.0, -0.1):
            with pytest.raises(ValueError):
                P2Quantile(q)

    def test_exact_below_five_samples(self):
        estimator = P2Quantile(0.5)
        assert estimator.value() == 0.0
        for value in (30, 10, 20):
            estimator.add(value)
        # Nearest rank over the sorted tiny buffer: rank 2 of [10,20,30].
        assert estimator.value() == 20

    def test_converges_on_a_known_distribution(self):
        rng = random.Random(42)
        values = [rng.uniform(0.0, 100.0) for _ in range(5000)]
        estimator = P2Quantile(0.9)
        for value in values:
            estimator.add(value)
        exact = sorted(values)[int(0.9 * len(values)) - 1]
        assert abs(estimator.value() - exact) < 2.0

    def test_tracks_extremes_exactly_at_the_tails(self):
        estimator = P2Quantile(0.5)
        for value in range(100):
            estimator.add(float(value))
        assert 40.0 < estimator.value() < 60.0


class TestStreamingQuantiles:
    def test_needs_a_quantile(self):
        with pytest.raises(ValueError):
            StreamingQuantiles(())

    def test_aggregates(self):
        stats = StreamingQuantiles((0.5,))
        assert (stats.mean, stats.minimum, stats.maximum) == (0.0, 0.0, 0.0)
        for value in (4.0, 8.0):
            stats.add(value)
        assert stats.count == 2
        assert stats.mean == 6.0
        assert stats.minimum == 4.0
        assert stats.maximum == 8.0

    def test_untracked_quantile_rejected(self):
        stats = StreamingQuantiles((0.5,))
        with pytest.raises(KeyError):
            stats.quantile(0.99)

    def test_reported_quantiles_are_monotone(self):
        rng = random.Random(7)
        stats = StreamingQuantiles((0.5, 0.9, 0.99))
        for _ in range(2000):
            stats.add(rng.expovariate(0.1))
        p50, p90, p99 = (stats.quantile(q) for q in (0.5, 0.9, 0.99))
        assert p50 <= p90 <= p99 <= stats.maximum

    def test_to_dict_is_json_shaped(self):
        stats = StreamingQuantiles((0.5, 0.99))
        stats.add(10.0)
        record = stats.to_dict()
        assert record["count"] == 1
        assert set(record["quantiles"]) == {"p50", "p99"}


class TestSloBudget:
    def test_parse_quantile_and_ratio(self):
        budget = SloBudget.parse("setup_p99=60")
        assert budget.stream == "setup"
        assert budget.quantile == 0.99
        assert budget.limit == 60.0
        ratio = SloBudget.parse("blocking_probability=0.05")
        assert ratio.stream is None
        assert ratio.quantile is None

    def test_parse_p999(self):
        assert SloBudget.parse("jitter_p999=5").quantile == 0.999

    def test_parse_rejects_malformed(self):
        for text in ("setup_p99", "=3", "setup_p99=abc", "setup_p0=1"):
            with pytest.raises(ValueError):
                SloBudget.parse(text)
        with pytest.raises(ValueError):
            SloBudget("setup_p99", -1.0)

    def test_parse_budgets_helper(self):
        budgets = parse_budgets(("setup_p99=60", "blocking_probability=0.1"))
        assert [b.metric for b in budgets] == [
            "setup_p99", "blocking_probability",
        ]


class TestSloEngine:
    def test_duplicate_budget_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SloEngine([SloBudget("setup_p99", 1), SloBudget("setup_p99", 2)])

    def test_untargeted_stream_is_ignored(self):
        engine = SloEngine([SloBudget("setup_p99", 10)], min_samples=1)
        engine.observe("jitter", 1e9, time=5)
        assert not engine.breached

    def test_min_samples_gates_the_first_breaches(self):
        engine = SloEngine([SloBudget("setup_p99", 1)], min_samples=10)
        for i in range(9):
            engine.observe("setup", 100.0, time=i)
        assert not engine.breached
        engine.observe("setup", 100.0, time=9)
        assert engine.breached

    def test_violation_is_attributable(self):
        engine = SloEngine([SloBudget("setup_p99", 5)], min_samples=1)
        engine.observe("setup", 80.0, time=1234, session_id=7, span_id=42)
        (violation,) = engine.violations
        assert violation.metric == "setup_p99"
        assert violation.observed == 80.0
        assert violation.session_id == 7
        assert violation.span_id == 42
        assert "session 7" in str(violation)
        assert violation.to_dict()["time"] == 1234

    def test_breach_is_sticky_but_live_state_recovers(self):
        engine = SloEngine(
            [SloBudget("blocking_probability", 0.5)], min_samples=1
        )
        engine.observe_ratio("blocking_probability", 9, 10, time=1, session_id=1)
        engine.observe_ratio("blocking_probability", 9, 1000, time=2)
        (state,) = engine.state()
        assert state["observed"] < 0.5
        assert not state["currently_breached"]
        assert state["breached"]  # sticky for gating
        assert engine.breached

    def test_one_violation_per_crossing_not_per_sample(self):
        engine = SloEngine([SloBudget("setup_p99", 5)], min_samples=1)
        for i in range(10):
            engine.observe("setup", 100.0, time=i, session_id=i)
        assert len(engine.violations) == 1

    def test_ratio_budget(self):
        engine = SloEngine(
            [SloBudget("blocking_probability", 0.2)], min_samples=4
        )
        engine.observe_ratio("blocking_probability", 1, 2, time=1)
        assert not engine.breached  # denominator below min_samples
        engine.observe_ratio("blocking_probability", 3, 4, time=2, session_id=9)
        assert engine.breached
        assert engine.violating_sessions() == [9]
        engine.observe_ratio("blocking_probability", 3, 100, time=3)
        (state,) = engine.state()
        assert not state["currently_breached"]

    def test_violating_sessions_deduplicated_in_breach_order(self):
        engine = SloEngine(
            [SloBudget("setup_p99", 5), SloBudget("jitter_p50", 1)],
            min_samples=1,
        )
        engine.observe("setup", 50.0, time=1, session_id=3)
        engine.observe("jitter", 50.0, time=2, session_id=3)
        assert engine.violating_sessions() == [3]

    def test_violation_list_is_bounded(self):
        engine = SloEngine(
            [SloBudget("refusal_rate", 0.5)], min_samples=1, max_violations=2
        )
        for i in range(6):
            # Alternate under/over so every crossing is a fresh violation.
            engine.observe_ratio("refusal_rate", 0, 10, time=2 * i)
            engine.observe_ratio("refusal_rate", 9, 10, time=2 * i + 1)
        assert len(engine.violations) == 2
        assert engine.dropped_violations == 4
