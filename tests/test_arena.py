"""Tests for the network-wide columnar arena and dimension-order routing.

The arena (DESIGN.md §7f) batches the link plane into per-cycle rings
and steps only awake routers; the identity contract is that delivered
flit streams and run summaries are bit-identical to the event-driven
object graph, including through mid-run flag flips.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import columnar
from repro.core.columnar import (
    ColumnarPool,
    ColumnarState,
    ColumnarUnavailableError,
)
from repro.harness.network_experiment import (
    NetworkExperiment,
    NetworkExperimentSpec,
    attach_delivery_log,
    parse_topology,
)
from repro.network.topology import Topology, TopologyError, mesh, torus
from repro.routing.deadlock import verify_deadlock_free
from repro.routing.dimension_order import (
    DimensionOrderRouter,
    dimension_order_relation,
    dimension_order_search,
    next_hop,
    require_grid,
)
from repro.sim.engine import Simulator
from repro.traffic.vbr import MpegProfile

np = columnar.load_numpy()
needs_numpy = pytest.mark.skipif(
    np is None, reason="NumPy (the repro[fast] extra) not installed"
)


def _summary(result):
    return (
        result.streams,
        result.attempts,
        result.mean_hops,
        result.delay_cycles.mean,
        result.delay_cycles.count,
        result.jitter_cycles.mean,
        result.by_hops,
        result.best_effort_delivered,
    )


def _run_point(arena: bool, topo: str, seed: int, columnar: bool = False):
    """One small mixed-traffic run: admitted CBR load, a deterministic
    set of VBR cross-streams, and best-effort chatter."""
    kind, _ = parse_topology(topo)
    spec = NetworkExperimentSpec(
        target_link_load=0.25,
        topology=topo,
        routing="adaptive" if kind == "irregular" else "dimension_order",
        best_effort_rate=0.4,
        warmup_cycles=300,
        measure_cycles=1200,
        seed=seed,
        network_arena=arena,
        columnar_state=columnar,
    )
    experiment = NetworkExperiment(spec)
    num_nodes = experiment.topology.num_nodes
    for src in range(0, num_nodes, 3):
        dst = (src + num_nodes // 2) % num_nodes
        if dst != src:
            experiment.interfaces[src].open_vbr(
                dst, MpegProfile(mean_rate_bps=8e6, frame_rate_hz=3000.0)
            )
    log = attach_delivery_log(experiment)
    result = experiment.result()
    return log, _summary(result)


@needs_numpy
class TestArenaIdentity:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        topo=st.sampled_from(("mesh3x3", "torus3x3", "torus4x2", "irregular")),
    )
    def test_arena_matches_object_graph(self, seed, topo):
        base_log, base = _run_point(False, topo, seed)
        arena_log, arena = _run_point(True, topo, seed)
        assert base == arena
        assert base_log == arena_log
        assert base_log, "scenario delivered no flits — vacuous identity"

    def test_mid_run_flips_are_bit_identical(self):
        spec = NetworkExperimentSpec(
            target_link_load=0.3,
            topology="mesh3x3",
            routing="dimension_order",
            best_effort_rate=0.5,
            warmup_cycles=300,
            measure_cycles=1500,
            seed=5,
        )
        reference = NetworkExperiment(spec)
        ref_log = attach_delivery_log(reference)
        ref = _summary(reference.result())

        flipped = NetworkExperiment(spec)
        flip_log = attach_delivery_log(flipped)
        flipped.run_to(600)
        flipped.network.set_network_arena(True)  # rings take over mid-run
        flipped.run_to(1200)
        flipped.network.set_network_arena(False)  # rings migrate back
        assert _summary(flipped.result()) == ref
        assert flip_log == ref_log

    def test_pooled_columnar_arena_matches_object_graph(self):
        # Regression: with columnar_state=True the banks are built
        # eagerly, so NetworkArena.install() must reserve every bank's
        # pool rows before the first adoption rebuilds into the pool —
        # interleaving reserve/adopt froze the chunks at one bank's
        # capacity and the second bank's take() raised RuntimeError at
        # construction (the CLI's --columnar --arena combination).
        base_log, base = _run_point(False, "mesh3x3", 7)
        pooled_log, pooled = _run_point(True, "mesh3x3", 7, columnar=True)
        assert base == pooled
        assert base_log == pooled_log
        assert base_log, "scenario delivered no flits — vacuous identity"

    def test_legacy_kernel_does_not_accumulate_wake_records(self):
        # Regression: with allow_fast_forward=False the arena ticks every
        # router every cycle, but the ActivitySet wake hooks still fire
        # on each idle->busy transition; the queue must be dropped per
        # tick, not left to grow (and get pickled) for the whole run.
        spec = NetworkExperimentSpec(
            target_link_load=0.25,
            topology="mesh3x3",
            routing="dimension_order",
            best_effort_rate=0.4,
            warmup_cycles=100,
            measure_cycles=400,
            seed=2,
            network_arena=True,
            allow_fast_forward=False,
        )
        experiment = NetworkExperiment(spec)
        experiment.run_to(experiment.total_cycles)
        arena = experiment.network.arena
        # At most one pending entry per router (the final tick's wakes).
        assert len(arena._woken) <= experiment.topology.num_nodes

    def test_arena_flag_is_idempotent(self):
        spec = NetworkExperimentSpec(
            target_link_load=0.2,
            topology="mesh3x3",
            warmup_cycles=100,
            measure_cycles=200,
            seed=1,
            network_arena=True,
        )
        experiment = NetworkExperiment(spec)
        assert experiment.network.network_arena
        experiment.network.set_network_arena(True)  # no-op, must not stack
        experiment.network.set_network_arena(False)
        assert not experiment.network.network_arena
        experiment.network.set_network_arena(False)
        experiment.result()


@pytest.mark.skipif(np is not None, reason="exercises the no-NumPy path")
def test_arena_requires_numpy():
    spec = NetworkExperimentSpec(
        target_link_load=0.2,
        topology="mesh3x3",
        warmup_cycles=100,
        measure_cycles=100,
        network_arena=True,
    )
    with pytest.raises(ColumnarUnavailableError):
        NetworkExperiment(spec)


@needs_numpy
class TestColumnarPool:
    def test_take_is_stable_and_typed(self):
        pool = ColumnarPool()
        req = ColumnarState.pool_requirements(8, 4)
        pool.reserve(req)
        a = pool.take(("x", "prio_base"), 8, np.float64)
        b = pool.take(("x", "prio_base"), 8, np.float64)
        assert a.base is b.base or np.shares_memory(a, b)
        with pytest.raises(ValueError):
            pool.take(("x", "prio_base"), 9, np.float64)

    def test_growth_after_allocation_is_refused(self):
        pool = ColumnarPool()
        pool.reserve({"float64": 4})
        pool.take(("a", "v"), 4, np.float64)
        with pytest.raises(RuntimeError):
            pool.reserve({"float64": 4})
            pool.take(("b", "v"), 4, np.float64)

    def test_pickle_drops_chunks_and_keeps_layout(self):
        import pickle

        pool = ColumnarPool()
        pool.reserve({"float64": 8})
        view = pool.take(("a", "v"), 8, np.float64)
        view[:] = 7.0
        clone = pickle.loads(pickle.dumps(pool))
        # Arrays are never pickled; the layout is, so the same key
        # resolves to the same rows in a fresh chunk.
        fresh = clone.take(("a", "v"), 8, np.float64)
        assert fresh.shape == view.shape
        assert clone.rows_allocated("float64") == pool.rows_allocated("float64")


class TestDimensionOrderRouting:
    def test_next_hop_goes_x_then_y(self):
        topo = mesh(4, 4)
        # node 0 -> node 15: cross X first (0->1->2->3), then Y.
        assert next_hop(topo, 0, 15) == 1
        assert next_hop(topo, 3, 15) == 7
        assert next_hop(topo, 15, 15) is None

    def test_torus_wrap_takes_shorter_way(self):
        topo = torus(5, 5)
        # 0 -> 4 along X: wrapping backward (0 -> 4) is 1 hop.
        assert next_hop(topo, 0, 4) == 4

    def test_search_walks_single_minimal_path(self):
        topo = mesh(4, 4)
        probe = dimension_order_search(topo, 0, 15, lambda n, p, x: True)
        assert probe.success
        assert probe.path[0] == 0 and probe.path[-1] == 15
        assert len(probe.path) == topo.distance(0, 15) + 1
        assert probe.backtracks == 0

    def test_search_fails_without_backtracking(self):
        topo = mesh(4, 4)
        # Refuse every link out of node 1 (the only DOR first hop 0->15).
        probe = dimension_order_search(
            topo, 0, 15, lambda n, p, x: n != 1
        )
        assert not probe.success
        assert probe.backtracks == 0

    def test_requires_grid_metadata(self):
        bare = Topology(4, [(0, 1), (1, 2), (2, 3)])
        with pytest.raises(TopologyError):
            require_grid(bare)
        with pytest.raises(TopologyError):
            DimensionOrderRouter(bare)

    def test_mesh_relation_is_deadlock_free(self):
        # Satellite guarantee: XY order on a mesh yields an acyclic
        # channel-dependency graph (Dally-Seitz), so saturated runs
        # cannot wedge.
        for dims in ((4, 4), (3, 5), (8, 2)):
            topo = mesh(*dims)
            assert verify_deadlock_free(topo, dimension_order_relation(topo)) is None

    def test_torus_wrap_closes_dependency_cycles(self):
        # Documented limitation: without datelines the torus wrap links
        # close rings in the dependency graph.
        topo = torus(4, 4)
        assert verify_deadlock_free(topo, dimension_order_relation(topo)) is not None

    def test_saturated_mesh_drains(self):
        spec = NetworkExperimentSpec(
            target_link_load=0.9,
            topology="mesh4x4",
            routing="dimension_order",
            best_effort_rate=2.0,
            warmup_cycles=500,
            measure_cycles=2000,
            seed=3,
        )
        experiment = NetworkExperiment(spec)
        experiment.run_to(experiment.total_cycles)
        network = experiment.network
        # Stop all injection, run the drain horizon: a deadlock-free
        # network must empty its buffers.
        for dst, stream in experiment.streams:
            stream.source.stop_time = experiment.sim.now
        experiment.sim.run(5000)
        assert network.total_buffered() == 0


class TestTickerSuspension:
    def test_suspended_tickers_do_not_run(self):
        sim = Simulator()
        calls = []

        def tick_a(cycle):
            calls.append(("a", cycle))

        def tick_b(cycle):
            calls.append(("b", cycle))

        sim.add_ticker(tick_a)
        sim.add_ticker(tick_b)
        sim.run(1)
        sim.suspend_tickers([tick_a])
        sim.run(1)
        sim.resume_tickers([tick_a])
        sim.run(1)
        assert calls == [
            ("a", 0), ("b", 0), ("b", 1), ("a", 2), ("b", 2),
        ]

    def test_unknown_ticker_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.suspend_tickers([lambda cycle: None])
