"""Link-failure and recovery scenarios over a live network."""

import pytest

from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.network.connection import ConnectionManager
from repro.network.interface import NetworkInterface
from repro.network.network import Network
from repro.network.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng


def build_square():
    # 0-1-3 and 0-2-3: two disjoint paths between 0 and 3, plus spurs.
    topo = Topology(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    config = RouterConfig(
        num_ports=topo.num_ports,
        vcs_per_port=16,
        round_factor=32,
        enforce_round_budgets=False,
    )
    sim = Simulator()
    rng = SeededRng(13, "fail")
    network = Network(topo, config, BiasedPriority(), sim, rng)
    manager = ConnectionManager(network)
    interfaces = [
        NetworkInterface(network, manager, n, rng=rng.spawn(f"ni{n}"))
        for n in range(4)
    ]
    return topo, network, manager, sim, interfaces


class TestLinkFailure:
    def test_ports_stay_stable_after_removal(self):
        topo, network, manager, sim, interfaces = build_square()
        port_0_to_2 = topo.port_of(0, 2)
        topo.remove_link(0, 1)
        # Surviving links keep their port numbers; the dead port reads None.
        assert topo.port_of(0, 2) == port_0_to_2
        assert topo.neighbor_on_port(0, 0) is None  # was the link to 1
        assert topo.host_port(0) == 2  # unchanged

    def test_reestablishment_avoids_failed_link(self):
        topo, network, manager, sim, interfaces = build_square()
        stream = interfaces[0].open_cbr(3, 55e6, stop_time=1)
        assert stream is not None
        first_path = list(stream.connection.path)
        sim.run(3000)  # drain the (stopped) stream
        interfaces[0].close(stream)
        # Fail the first hop of the old path.
        topo.remove_link(first_path[0], first_path[1])
        replacement = interfaces[0].open_cbr(3, 55e6)
        assert replacement is not None
        assert replacement.connection.path != first_path
        assert (first_path[0], first_path[1]) not in list(
            zip(replacement.connection.path, replacement.connection.path[1:])
        )
        sim.run(10000)
        stats = interfaces[3].end_to_end[replacement.connection.connection_id]
        assert stats.flits > 100

    def test_unaffected_traffic_keeps_flowing_through_failure(self):
        topo, network, manager, sim, interfaces = build_square()
        # Stream on the 0-2-3 side; fail the 0-1 link it never uses.
        stream = interfaces[2].open_cbr(3, 55e6)
        assert stream is not None
        sim.run(5000)
        before = interfaces[3].end_to_end[stream.connection.connection_id].flits
        topo.remove_link(0, 1)
        sim.run(5000)
        after = interfaces[3].end_to_end[stream.connection.connection_id].flits
        assert after > before

    def test_establishment_fails_when_network_partitioned(self):
        topo, network, manager, sim, interfaces = build_square()
        topo.remove_link(0, 1)
        topo.remove_link(0, 2)
        # Node 0 is now isolated from 3.
        assert interfaces[0].open_cbr(3, 20e6) is None
        assert manager.stats.failed >= 1

    def test_best_effort_reroutes_around_failure(self):
        topo, network, manager, sim, interfaces = build_square()
        # Pre-failure routing may use either path; after failing 0-1 all
        # packets must take 0-2-3 and still arrive.
        topo.remove_link(0, 1)
        network.adaptive = type(network.adaptive)(topo)  # rebuild relation
        for _ in range(10):
            interfaces[0].send_best_effort(3)
        sim.run(3000)
        assert interfaces[3].packets_received == 10
