"""Tests for the crossbar organisations and the cost model."""

import math

import pytest

from repro.core.costmodel import (
    CrossbarOrganisation,
    arbiter_delay,
    area_ratio,
    crossbar_cost,
    multiplexor_delay,
    scheduling_rate_ns,
    vcm_cycle_budget,
)
from repro.core.crossbar import CrossbarError, MultiplexedCrossbar, PerfectSwitch


class TestMultiplexedCrossbar:
    def test_rejects_nonpositive_ports(self):
        with pytest.raises(ValueError):
            MultiplexedCrossbar(0)

    def test_configure_and_transmit(self):
        xbar = MultiplexedCrossbar(4)
        xbar.configure({0: 2, 1: 3})
        assert xbar.output_for(0) == 2
        assert xbar.output_for(2) is None
        assert xbar.transmit(0) == 2
        assert xbar.flits_switched == 1

    def test_transmit_unconfigured_rejected(self):
        xbar = MultiplexedCrossbar(4)
        with pytest.raises(CrossbarError):
            xbar.transmit(1)

    def test_output_conflict_rejected(self):
        xbar = MultiplexedCrossbar(4)
        with pytest.raises(CrossbarError):
            xbar.configure({0: 2, 1: 2})

    def test_port_range_checked(self):
        xbar = MultiplexedCrossbar(4)
        with pytest.raises(CrossbarError):
            xbar.configure({4: 0})
        with pytest.raises(CrossbarError):
            xbar.configure({0: 4})
        with pytest.raises(CrossbarError):
            xbar.output_for(9)

    def test_reconfiguration_counted_only_on_change(self):
        xbar = MultiplexedCrossbar(4)
        xbar.configure({0: 1})
        xbar.configure({0: 1})  # identical: no reconfiguration
        xbar.configure({0: 2})
        assert xbar.reconfigurations == 2

    def test_configuration_copy(self):
        xbar = MultiplexedCrossbar(4)
        xbar.configure({0: 1})
        snapshot = xbar.configuration
        snapshot[2] = 3
        assert xbar.output_for(2) is None

    def test_output_concurrency_is_one(self):
        assert MultiplexedCrossbar(4).max_flits_per_output() == 1


class TestPerfectSwitch:
    def test_allows_output_conflicts(self):
        switch = PerfectSwitch(4)
        switch.configure({0: 2, 1: 2, 3: 2})
        assert switch.transmit(0) == 2
        assert switch.transmit(1) == 2

    def test_output_concurrency_is_n(self):
        assert PerfectSwitch(8).max_flits_per_output() == 8

    def test_still_checks_port_ranges(self):
        with pytest.raises(CrossbarError):
            PerfectSwitch(4).configure({0: 9})


class TestCostModel:
    def test_multiplexed_area(self):
        cost = crossbar_cost(CrossbarOrganisation.MULTIPLEXED, 8, 256)
        assert cost.crosspoints == 64
        assert cost.ports_per_link == 1
        assert cost.needs_input_vc_arbitration

    def test_fully_demultiplexed_area_is_v_squared(self):
        # The paper: multiplexed reduces area by V^2 vs fully de-muxed.
        ratio = area_ratio(
            CrossbarOrganisation.MULTIPLEXED,
            CrossbarOrganisation.FULLY_DEMULTIPLEXED,
            num_links=8,
            vcs_per_link=256,
        )
        assert ratio == pytest.approx(256**2)

    def test_partially_multiplexed_ratio(self):
        ratio = area_ratio(
            CrossbarOrganisation.MULTIPLEXED,
            CrossbarOrganisation.PARTIALLY_MULTIPLEXED,
            num_links=8,
            vcs_per_link=256,
            group_size=1,
        )
        assert ratio == pytest.approx(256**2)
        ratio_grouped = area_ratio(
            CrossbarOrganisation.MULTIPLEXED,
            CrossbarOrganisation.PARTIALLY_MULTIPLEXED,
            num_links=8,
            vcs_per_link=256,
            group_size=16,
        )
        assert ratio_grouped == pytest.approx(16**2)

    def test_fully_demuxed_needs_no_arbitration(self):
        cost = crossbar_cost(CrossbarOrganisation.FULLY_DEMULTIPLEXED, 8, 16)
        assert not cost.needs_output_arbitration
        assert not cost.needs_input_vc_arbitration

    def test_cost_validation(self):
        with pytest.raises(ValueError):
            crossbar_cost(CrossbarOrganisation.MULTIPLEXED, 0, 16)
        with pytest.raises(ValueError):
            crossbar_cost(CrossbarOrganisation.MULTIPLEXED, 8, 0)
        with pytest.raises(ValueError):
            crossbar_cost(CrossbarOrganisation.MULTIPLEXED, 8, 16, group_size=32)

    def test_multiplexor_delay_grows_logarithmically(self):
        assert multiplexor_delay(1) == 0.0
        assert multiplexor_delay(4, fanin_per_stage=4) == 1
        assert multiplexor_delay(256, fanin_per_stage=4) == 4
        assert multiplexor_delay(256) > multiplexor_delay(16)

    def test_multiplexor_delay_validation(self):
        with pytest.raises(ValueError):
            multiplexor_delay(0)
        with pytest.raises(ValueError):
            multiplexor_delay(8, fanin_per_stage=1)

    def test_arbiter_delay_mirrors_mux(self):
        assert arbiter_delay(64) == multiplexor_delay(64)

    def test_scheduling_rate_matches_paper(self):
        # 1-2 Gbps links, 128-bit flits -> 64-128 ns switch settings (§6).
        assert scheduling_rate_ns(2e9, 128) == pytest.approx(64.0)
        assert scheduling_rate_ns(1e9, 128) == pytest.approx(128.0)

    def test_scheduling_rate_validation(self):
        with pytest.raises(ValueError):
            scheduling_rate_ns(0, 128)

    def test_vcm_budget_balanced(self):
        # 16-bit phits at 1.24 Gbps arrive every ~12.9 ns; 8 modules of
        # 40 ns RAM serve a phit every 5 ns on average: budget < 1.
        budget = vcm_cycle_budget(1.24e9, 16, memory_access_ns=40.0, num_modules=8)
        assert budget < 1.0

    def test_vcm_budget_overrun(self):
        budget = vcm_cycle_budget(1.24e9, 16, memory_access_ns=40.0, num_modules=1)
        assert budget > 1.0

    def test_vcm_budget_validation(self):
        with pytest.raises(ValueError):
            vcm_cycle_budget(0, 16, 40.0, 8)
        with pytest.raises(ValueError):
            vcm_cycle_budget(1e9, 16, 0.0, 8)


class TestSerializationModel:
    def test_serialization_factor(self):
        from repro.core.costmodel import serialization_factor

        # 64-bit datapath over 16-bit links: 4 phit times per word.
        assert serialization_factor(64, 16) == 4
        # Link at least as wide as the datapath: no serialisation.
        assert serialization_factor(16, 16) == 1
        assert serialization_factor(8, 16) == 1
        # Non-multiple widths round up.
        assert serialization_factor(20, 16) == 2

    def test_serialization_validation(self):
        from repro.core.costmodel import serialization_factor
        import pytest as _pytest

        with _pytest.raises(ValueError):
            serialization_factor(0, 16)
        with _pytest.raises(ValueError):
            serialization_factor(64, 0)

    def test_flit_pipeline_stages(self):
        from repro.core.costmodel import flit_pipeline_stages

        # The paper's 128-bit flits over a 64-bit internal datapath.
        assert flit_pipeline_stages(128, 64) == 2
        assert flit_pipeline_stages(128, 128) == 1
        assert flit_pipeline_stages(100, 64) == 2

    def test_flit_pipeline_validation(self):
        from repro.core.costmodel import flit_pipeline_stages
        import pytest as _pytest

        with _pytest.raises(ValueError):
            flit_pipeline_stages(0, 64)
