"""Tests for the distributed sweep fabric: the content-addressed result
store (corruption and staleness semantics), the lease-file work queue
(claims, heartbeats, crash requeue), and the end-to-end worker path
(dead-worker takeover with checkpoint resume, identical to serial)."""

import json
import time

import pytest

from repro.core.config import RouterConfig
from repro.fabric import (
    Fabric,
    FabricQueue,
    FabricSubmissionError,
    FabricWorker,
    ResultStore,
    StoreCorruptionError,
    collect_sweep,
    spec_key,
    submit_sweep,
)
from repro.harness.single_router import (
    ExperimentSpec,
    SimulatedWorkerCrash,
    run_single_router_experiment,
)
from repro.harness.sweep import SweepAxis, _run_point, run_sweep, sweep_points

TINY = RouterConfig(num_ports=4, vcs_per_port=32, enforce_round_budgets=False)

METRICS = ("mean_delay_cycles", "mean_jitter_cycles", "utilisation")


def tiny_spec(**overrides):
    base = dict(
        target_load=0.4,
        config=TINY,
        candidates=4,
        seed=3,
        warmup_cycles=300,
        measure_cycles=1500,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def tiny_fabric(tmp_path, **overrides):
    base = dict(
        directory=tmp_path / "fabric",
        lease_ttl=30.0,
        checkpoint_every=500,
        revision="rev-a",
    )
    base.update(overrides)
    return Fabric(**base)


class TestResultStore:
    def test_put_get_roundtrip_with_manifest(self, tmp_path):
        store = ResultStore(tmp_path, revision="rev-a")
        key = store.key_for(tiny_spec(), "(3,)")
        store.put(key, {"value": 42}, {"who": "test"})
        result, manifest = store.get(key)
        assert result == {"value": 42}
        assert manifest == {"who": "test"}
        assert store.stats()["hits"] == 1
        assert store.stats()["writes"] == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path, revision="rev-a")
        assert store.get(store.key_for(tiny_spec(), "(3,)")) is None
        assert store.stats()["misses"] == 1

    def test_config_change_misses_never_stale_hit(self, tmp_path):
        store = ResultStore(tmp_path, revision="rev-a")
        store.put(store.key_for(tiny_spec(), "(3,)"), "old", None)
        changed = store.key_for(tiny_spec(target_load=0.5), "(3,)")
        assert store.get(changed) is None
        # The original is untouched and still hits.
        assert store.get(store.key_for(tiny_spec(), "(3,)"))[0] == "old"

    def test_revision_change_misses_never_stale_hit(self, tmp_path):
        old = ResultStore(tmp_path, revision="rev-a")
        old.put(old.key_for(tiny_spec(), "(3,)"), "old", None)
        new = ResultStore(tmp_path, revision="rev-b")
        assert new.get(new.key_for(tiny_spec(), "(3,)")) is None
        assert new.stats()["misses"] == 1 and new.stats()["hits"] == 0

    def test_truncated_entry_raises_typed_error(self, tmp_path):
        store = ResultStore(tmp_path, revision="rev-a")
        key = store.key_for(tiny_spec(), "(3,)")
        path = store.put(key, list(range(100)), None)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(StoreCorruptionError, match="truncated"):
            store.load(key)

    def test_bad_sha_raises_typed_error(self, tmp_path):
        store = ResultStore(tmp_path, revision="rev-a")
        key = store.key_for(tiny_spec(), "(3,)")
        path = store.put(key, "payload", None)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreCorruptionError, match="sha256"):
            store.load(key)

    def test_bad_magic_raises_typed_error(self, tmp_path):
        store = ResultStore(tmp_path, revision="rev-a")
        key = store.key_for(tiny_spec(), "(3,)")
        path = store.put(key, "payload", None)
        path.write_bytes(b"NOT-A-STORE-ENTRY\n" + path.read_bytes())
        with pytest.raises(StoreCorruptionError, match="magic"):
            store.load(key)

    def test_get_drops_corrupt_entry_and_reports_miss(self, tmp_path):
        store = ResultStore(tmp_path, revision="rev-a")
        key = store.key_for(tiny_spec(), "(3,)")
        path = store.put(key, "payload", None)
        path.write_bytes(path.read_bytes()[:-3])
        assert store.get(key) is None
        assert store.stats()["corrupt_dropped"] == 1
        assert not path.exists()  # dropped, so the next put replaces it
        store.put(key, "recomputed", None)
        assert store.get(key)[0] == "recomputed"

    def test_key_collision_detected(self, tmp_path):
        # An entry renamed to answer a different key must be rejected.
        store = ResultStore(tmp_path, revision="rev-a")
        key_a = store.key_for(tiny_spec(), "(3,)")
        key_b = store.key_for(tiny_spec(), "(4,)")
        path_a = store.put(key_a, "a", None)
        path_b = store.path_for(key_b)
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_a.rename(path_b)
        with pytest.raises(StoreCorruptionError, match="answers key"):
            store.load(key_b)

    def test_gc_prunes_other_revisions(self, tmp_path):
        old = ResultStore(tmp_path, revision="rev-a")
        old.put(old.key_for(tiny_spec(), "(3,)"), "old", None)
        new = ResultStore(tmp_path, revision="rev-b")
        new.put(new.key_for(tiny_spec(), "(3,)"), "new", None)
        assert new.entries() == 2
        report = new.gc(keep_revision="rev-b")
        assert report["removed_entries"] == 1
        assert new.entries() == 1
        assert new.get(new.key_for(tiny_spec(), "(3,)"))[0] == "new"


class TestFabricQueue:
    def _submit(self, tmp_path, axes=None):
        axes = axes or [SweepAxis("seed", (3, 4))]
        points = sweep_points(tiny_spec(), axes)
        queue = FabricQueue(tmp_path / "fabric")
        manifest = queue.submit(points, kind="single_router", axes=axes)
        return queue, points, manifest

    def test_submit_explodes_points(self, tmp_path):
        queue, points, manifest = self._submit(tmp_path)
        assert manifest["points"] == 2
        assert len(queue.point_ids()) == 2
        for pid, (key, spec) in zip(manifest["point_ids"], points):
            loaded_key, loaded_spec = queue.load_point(pid)
            assert loaded_key == key
            assert loaded_spec == spec

    def test_resubmit_same_grid_is_idempotent(self, tmp_path):
        queue, points, manifest = self._submit(tmp_path)
        again = queue.submit(points, kind="single_router")
        assert again["grid_digest"] == manifest["grid_digest"]

    def test_submit_different_grid_refused(self, tmp_path):
        queue, _, _ = self._submit(tmp_path)
        other = sweep_points(tiny_spec(), [SweepAxis("seed", (7, 8))])
        with pytest.raises(FabricSubmissionError, match="refusing to mix"):
            queue.submit(other, kind="single_router")

    def test_claim_is_exclusive(self, tmp_path):
        queue, _, manifest = self._submit(tmp_path)
        pid = manifest["point_ids"][0]
        assert queue.try_claim(pid, "worker-a")
        assert not queue.try_claim(pid, "worker-b")
        queue.release(pid, "worker-a")
        assert queue.try_claim(pid, "worker-b")

    def test_release_requires_ownership(self, tmp_path):
        queue, _, manifest = self._submit(tmp_path)
        pid = manifest["point_ids"][0]
        assert queue.try_claim(pid, "worker-a")
        queue.release(pid, "worker-b")  # not the owner: no-op
        assert not queue.try_claim(pid, "worker-b")

    def test_expired_lease_is_broken_and_logged(self, tmp_path):
        queue, _, manifest = self._submit(tmp_path)
        queue.lease_ttl = 0.05
        pid = manifest["point_ids"][0]
        assert queue.try_claim(pid, "dead-worker")
        time.sleep(0.1)
        assert queue.lease_expired(pid)
        assert queue.try_claim(pid, "rescue-worker")
        events = queue.read_events()
        assert any(
            e["event"] == "lease_expired" and e["dead_worker"] == "dead-worker"
            for e in events
        )

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        queue, _, manifest = self._submit(tmp_path)
        queue.lease_ttl = 0.3
        pid = manifest["point_ids"][0]
        assert queue.try_claim(pid, "worker-a")
        for _ in range(3):
            time.sleep(0.15)
            assert queue.heartbeat(pid, "worker-a")
            assert not queue.lease_expired(pid)

    def test_heartbeat_detects_lost_ownership(self, tmp_path):
        queue, _, manifest = self._submit(tmp_path)
        pid = manifest["point_ids"][0]
        assert queue.try_claim(pid, "worker-a")
        queue.release(pid, "worker-a")
        assert queue.try_claim(pid, "worker-b")
        assert not queue.heartbeat(pid, "worker-a")

    def test_status_counts(self, tmp_path):
        queue, _, manifest = self._submit(tmp_path)
        pid = manifest["point_ids"][0]
        queue.write_result(pid, {"key": [3], "cached": False})
        status = queue.status()
        assert status["points"] == 2
        assert status["completed"] == 1
        assert status["queue_depth"] == 1
        assert not status["complete"]


class TestFabricEndToEnd:
    def test_cold_run_matches_serial_and_warm_rerun_hits(self, tmp_path):
        axes = [SweepAxis("seed", (3, 4))]
        serial = run_sweep(tiny_spec(), axes)
        fabric = tiny_fabric(tmp_path)
        cold = run_sweep(tiny_spec(), axes, fabric=fabric)
        assert cold.rows(METRICS) == serial.rows(METRICS)
        for manifest in cold.manifests.values():
            assert manifest["fabric"]["cached"] is False

        warm_fabric = tiny_fabric(
            tmp_path, directory=tmp_path / "fabric2", store_dir=fabric.store_root
        )
        warm = run_sweep(tiny_spec(), axes, fabric=warm_fabric)
        assert warm.rows(METRICS) == serial.rows(METRICS)
        for manifest in warm.manifests.values():
            assert manifest["fabric"]["cached"] is True

    def test_fabric_excludes_jobs_and_checkpointing(self, tmp_path):
        from repro.harness.sweep import Checkpointing

        fabric = tiny_fabric(tmp_path)
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_sweep(tiny_spec(), [SweepAxis("seed", (3,))], jobs=2, fabric=fabric)
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_sweep(
                tiny_spec(),
                [SweepAxis("seed", (3,))],
                checkpointing=Checkpointing(directory=tmp_path / "ck", every=100),
                fabric=fabric,
            )

    def test_dead_worker_requeue_resumes_from_checkpoint(self, tmp_path):
        """The ISSUE's acceptance drill, in-process: a worker dies
        mid-point after checkpointing (lease left behind, never
        released), a second worker breaks the expired lease, resumes
        the point from its checkpoint, and the grid is identical to a
        serial run."""
        axes = [SweepAxis("seed", (3, 4))]
        serial = run_sweep(tiny_spec(), axes)
        fabric = tiny_fabric(tmp_path, checkpoint_every=400)
        points = sweep_points(tiny_spec(), axes)
        submit_sweep(fabric, points, run_single_router_experiment, axes=tuple(axes))
        queue = FabricQueue(fabric.directory, lease_ttl=fabric.lease_ttl)
        victim = queue.point_ids()[0]
        victim_key, victim_spec = queue.load_point(victim)

        # "Worker A": claims the point, checkpoints at 400/800/1200, dies
        # at cycle 1200 without releasing its lease (the hard-kill model
        # — SIGKILL leaves exactly this state behind).
        assert queue.try_claim(victim, "doomed-worker")
        with pytest.raises(SimulatedWorkerCrash):
            _run_point(
                victim_spec,
                run_single_router_experiment,
                checkpoint_path=str(queue.checkpoint_path(victim)),
                checkpoint_every=400,
                resume=True,
                crash_at_cycle=1200,
            )
        assert queue.checkpoint_path(victim).exists()

        # Backdate the dead lease instead of sleeping out a real TTL.
        lease_path = queue.lease_path(victim)
        lease = json.loads(lease_path.read_text())
        lease["heartbeat_unix"] = time.time() - 10 * fabric.lease_ttl
        lease_path.write_text(json.dumps(lease))
        assert queue.lease_expired(victim)

        # "Worker B": breaks the lease, resumes, finishes the grid.
        rescue = FabricWorker(fabric, worker_id="rescue-worker")
        rescue.drain_until_complete(timeout=120)
        marker = queue.read_result(victim)
        assert marker["worker"] == "rescue-worker"
        assert marker["checkpoint"]["resumed_from_cycle"] is not None
        assert marker["checkpoint"]["resumed_from_cycle"] > 0
        assert rescue.points_resumed >= 1
        events = queue.read_events()
        assert any(
            e["event"] == "lease_expired" and e["dead_worker"] == "doomed-worker"
            for e in events
        )

        result = collect_sweep(fabric, tuple(axes))
        assert result.rows(METRICS) == serial.rows(METRICS)

    def test_corrupt_entry_recomputed_not_reused(self, tmp_path):
        axes = [SweepAxis("seed", (3, 4))]
        fabric = tiny_fabric(tmp_path)
        cold = run_sweep(tiny_spec(), axes, fabric=fabric)

        # Truncate one entry, then rerun through a fresh queue.
        store = ResultStore(fabric.store_root, revision=fabric.revision)
        victim_spec = sweep_points(tiny_spec(), axes)[0][1]
        victim_path = store.path_for(store.key_for(victim_spec, "(3,)"))
        victim_path.write_bytes(victim_path.read_bytes()[:20])

        rerun_fabric = tiny_fabric(
            tmp_path, directory=tmp_path / "fabric2", store_dir=fabric.store_root
        )
        submit_sweep(
            rerun_fabric,
            sweep_points(tiny_spec(), axes),
            run_single_router_experiment,
            axes=tuple(axes),
        )
        worker = FabricWorker(rerun_fabric)
        worker.drain_until_complete(timeout=120)
        assert worker.store.stats()["corrupt_dropped"] == 1
        assert worker.points_computed == 1  # exactly the truncated point
        assert worker.points_cached == 1
        rerun = collect_sweep(rerun_fabric, tuple(axes))
        assert rerun.rows(METRICS) == cold.rows(METRICS)

    def test_worker_telemetry_and_health_trail(self, tmp_path):
        axes = [SweepAxis("seed", (3,))]
        fabric = tiny_fabric(tmp_path)
        submit_sweep(
            fabric,
            sweep_points(tiny_spec(), axes),
            run_single_router_experiment,
            axes=tuple(axes),
        )
        worker = FabricWorker(fabric, worker_id="obs-worker")
        worker.drain_until_complete(timeout=120)
        trail_path = fabric.directory / "health" / "obs-worker.jsonl"
        assert trail_path.exists()
        from repro.obs.health import read_health

        snapshots = read_health(trail_path)
        assert snapshots
        last = snapshots[-1]
        assert "fabric.queue_depth" in last["channels"]
        assert "fabric.lease_expiries" in last["channels"]
        assert "fabric.cache_hit_ratio" in last["channels"]
        assert last["extra"]["worker"] == "obs-worker"
        assert last["extra"]["queue_depth"] == 0
        assert last["extra"]["store"]["writes"] == 1


class TestFigureStoreCache:
    def test_figures_cache_warm_across_invocations(self, tmp_path):
        from repro.harness import figures

        spec = tiny_spec()
        try:
            store = figures.enable_figure_cache(tmp_path / "figcache")
            first = figures.run_point(spec)
            assert store.stats() == {
                **store.stats(),
                "writes": 1,
                "hits": 0,
                "misses": 1,
            }
            figures.clear_cache()  # simulate a fresh process
            second = figures.run_point(spec)
            assert store.stats()["hits"] == 1
            assert store.stats()["writes"] == 1
            assert first.mean_delay_cycles == second.mean_delay_cycles
            assert first.mean_jitter_cycles == second.mean_jitter_cycles
        finally:
            figures.disable_figure_cache()
            figures.clear_cache()

    def test_prime_cache_resolves_store_hits_first(self, tmp_path):
        from repro.harness import figures

        specs = [tiny_spec(seed=3), tiny_spec(seed=4)]
        try:
            store = figures.enable_figure_cache(tmp_path / "figcache")
            figures.prime_cache([specs[0]])
            figures.clear_cache()
            figures.prime_cache(specs)
            assert store.stats()["hits"] == 1  # seed=3 from disk
            assert store.stats()["writes"] == 2  # seed=4 computed + stored
        finally:
            figures.disable_figure_cache()
            figures.clear_cache()

    def test_cache_off_by_default(self, tmp_path):
        from repro.harness import figures

        figures.clear_cache()
        spec = tiny_spec()
        figures.run_point(spec)
        # No store attached: nothing persisted anywhere.
        assert not list(tmp_path.iterdir())
        figures.clear_cache()
