"""Tests for the multi-router network: wiring, flow control, best-effort."""

import pytest

from repro.core.config import RouterConfig
from repro.core.flit import Flit, FlitType
from repro.core.priority import BiasedPriority
from repro.network.connection import ConnectionManager
from repro.network.interface import NetworkInterface
from repro.network.network import Network
from repro.network.topology import irregular, mesh, ring
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng


def build_network(topo=None, vcs=8, link_latency=1, **config_overrides):
    topo = topo or mesh(3, 3)
    defaults = dict(
        num_ports=topo.num_ports,
        vcs_per_port=vcs,
        vc_buffer_flits=4,
        enforce_round_budgets=False,
    )
    defaults.update(config_overrides)
    config = RouterConfig(**defaults)
    sim = Simulator()
    rng = SeededRng(11, "nettest")
    network = Network(
        topo, config, BiasedPriority(), sim, rng, link_latency=link_latency
    )
    manager = ConnectionManager(network)
    return network, manager, sim, rng


class TestWiring:
    def test_router_per_node(self):
        network, _, _, _ = build_network()
        assert len(network.routers) == 9

    def test_config_must_cover_topology_ports(self):
        topo = mesh(3, 3)
        config = RouterConfig(num_ports=2, vcs_per_port=4)
        with pytest.raises(ValueError):
            Network(topo, config, BiasedPriority(), Simulator(), SeededRng(1, "x"))

    def test_link_latency_validated(self):
        with pytest.raises(ValueError):
            build_network(link_latency=0)

    def test_host_delivery_only_on_host_ports(self):
        network, _, _, _ = build_network()
        with pytest.raises(ValueError):
            network.set_host_delivery(4, 0, lambda n, p, f: None)


class TestEndToEnd:
    def test_multi_hop_cbr_delivery(self):
        network, manager, sim, rng = build_network()
        interfaces = [
            NetworkInterface(network, manager, n, rng=rng.spawn(f"ni{n}"))
            for n in range(9)
        ]
        stream = interfaces[0].open_cbr(8, 20e6)
        assert stream is not None
        sim.run(20000)
        stats = interfaces[8].end_to_end[stream.connection.connection_id]
        assert stats.flits > 100
        # Path 0..8 in a 3x3 mesh is 4 hops; uncontended latency is a few
        # cycles and perfectly regular.
        assert stats.delay.mean < 10
        assert stats.jitter.mean == pytest.approx(0.0, abs=0.01)

    def test_flit_conservation(self):
        network, manager, sim, rng = build_network()
        interfaces = [
            NetworkInterface(network, manager, n, rng=rng.spawn(f"ni{n}"))
            for n in range(9)
        ]
        streams = []
        for src, dst, rate in [(0, 8, 55e6), (3, 5, 20e6), (6, 2, 10e6)]:
            stream = interfaces[src].open_cbr(dst, rate)
            assert stream is not None
            streams.append((src, dst, stream))
        sim.run(30000)
        for src, dst, stream in streams:
            generated = stream.source.flits_generated
            received = interfaces[dst].end_to_end[
                stream.connection.connection_id
            ].flits
            in_flight = network.total_buffered() + stream.source.backlog
            assert received <= generated
            assert generated - received <= max(in_flight, 16)

    def test_connections_share_links_without_loss(self):
        network, manager, sim, rng = build_network()
        interfaces = [
            NetworkInterface(network, manager, n, rng=rng.spawn(f"ni{n}"))
            for n in range(9)
        ]
        streams = [
            interfaces[0].open_cbr(8, 120e6),
            interfaces[1].open_cbr(8, 55e6),
        ]
        assert all(s is not None for s in streams)
        sim.run(20000)
        for stream in streams:
            stats = interfaces[8].end_to_end[stream.connection.connection_id]
            assert stats.flits > 50

    def test_link_latency_adds_to_path_delay(self):
        results = {}
        for latency in (1, 4):
            network, manager, sim, rng = build_network(link_latency=latency)
            interfaces = [
                NetworkInterface(network, manager, n, rng=rng.spawn(f"ni{n}"))
                for n in range(9)
            ]
            stream = interfaces[0].open_cbr(8, 20e6)
            sim.run(20000)
            stats = interfaces[8].end_to_end[stream.connection.connection_id]
            results[latency] = stats.delay.mean
        assert results[4] > results[1]


class TestBestEffort:
    def test_delivery_on_mesh(self):
        network, manager, sim, rng = build_network()
        interfaces = [
            NetworkInterface(network, manager, n, rng=rng.spawn(f"ni{n}"))
            for n in range(9)
        ]
        for _ in range(10):
            interfaces[0].send_best_effort(8)
        sim.run(2000)
        assert interfaces[8].packets_received == 10
        assert interfaces[0].be_sent == 10

    def test_delivery_on_irregular(self):
        topo = irregular(8, SeededRng(21, "irr"), mean_degree=3.0)
        network, manager, sim, rng = build_network(topo=topo)
        interfaces = [
            NetworkInterface(network, manager, n, rng=rng.spawn(f"ni{n}"))
            for n in range(8)
        ]
        pairs = [(0, 7), (3, 1), (5, 2), (6, 4)]
        for src, dst in pairs:
            for _ in range(5):
                interfaces[src].send_best_effort(dst)
        sim.run(5000)
        for src, dst in pairs:
            assert interfaces[dst].packets_received >= 5

    def test_best_effort_yields_to_cbr(self):
        network, manager, sim, rng = build_network()
        interfaces = [
            NetworkInterface(network, manager, n, rng=rng.spawn(f"ni{n}"))
            for n in range(9)
        ]
        stream = interfaces[0].open_cbr(8, 120e6)
        for _ in range(20):
            interfaces[0].send_best_effort(8)
        sim.run(20000)
        cbr_stats = interfaces[8].end_to_end[stream.connection.connection_id]
        assert cbr_stats.flits > 500
        assert interfaces[8].packets_received == 20

    def test_no_vc_leak(self):
        network, manager, sim, rng = build_network()
        interfaces = [
            NetworkInterface(network, manager, n, rng=rng.spawn(f"ni{n}"))
            for n in range(9)
        ]
        for i in range(50):
            interfaces[0].send_best_effort(8)
        sim.run(10000)
        assert interfaces[8].packets_received == 50
        # All packet VCs must have been released everywhere.
        for router in network.routers:
            for port in router.input_ports:
                assert port.free_vc_count() >= 8 - 1  # stream-free network
        assert network.total_buffered() == 0
