"""Tests for the phit-level link reception path (§3.2, §3.4)."""

import pytest

from repro.core.flit import Flit, FlitType, fragment_into_phits
from repro.core.link import (
    ControlWord,
    LinkReceiver,
    LinkTimingConfig,
    LinkTransmitter,
    transfer_flit,
)
from repro.core.vcm import VcmGeometry


def geometry(num_vcs=4, phits=8):
    return VcmGeometry(num_vcs, flits_per_vc=4, phits_per_flit=phits, num_modules=8)


def data_flit(connection_id=1):
    return Flit(FlitType.DATA, connection_id=connection_id)


class TestControlWord:
    def test_validation(self):
        with pytest.raises(ValueError):
            ControlWord(-1)

    def test_timing_validation(self):
        with pytest.raises(ValueError):
            LinkTimingConfig(decode_phit_times=-1)


class TestTransmitter:
    def test_frame_structure(self):
        tx = LinkTransmitter(phits_per_flit=8)
        flit = data_flit()
        word, phits = tx.frame(flit, vc_index=3)
        assert word.vc_index == 3
        assert len(phits) == 8
        assert all(p.flit_id == flit.flit_id for p in phits)
        assert tx.flits_sent == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkTransmitter(0)


class TestReceiver:
    def test_whole_flit_lands_in_vcm(self):
        rx = LinkReceiver(geometry())
        tx = LinkTransmitter(8)
        flit = data_flit()
        transfer_flit(tx, rx, flit, vc_index=2)
        assert rx.flits_received == 1
        assert rx.vcm.occupancy(2) == 1
        assert rx.vcm.read_flit(2) is flit
        assert rx.completed() == [(2, flit)]

    def test_fifo_across_flits(self):
        rx = LinkReceiver(geometry())
        tx = LinkTransmitter(8)
        flits = [data_flit(i) for i in range(3)]
        for flit in flits:
            transfer_flit(tx, rx, flit, vc_index=1)
        assert [rx.vcm.read_flit(1) for _ in range(3)] == flits

    def test_decode_latency_fills_phit_buffer(self):
        timing = LinkTimingConfig(decode_phit_times=3)
        rx = LinkReceiver(geometry(), timing)
        tx = LinkTransmitter(8)
        transfer_flit(tx, rx, data_flit(), vc_index=0)
        # During decode, up to decode_phit_times phits queued up; the
        # default sizing rule absorbed them without overflow.
        assert 1 <= rx.peak_buffer_occupancy <= 4

    def test_undersized_buffer_overflows(self):
        timing = LinkTimingConfig(decode_phit_times=4)
        rx = LinkReceiver(geometry(), timing, phit_buffer_depth=2)
        tx = LinkTransmitter(8)
        with pytest.raises(RuntimeError, match="overflow"):
            transfer_flit(tx, rx, data_flit(), vc_index=0)

    def test_zero_decode_streams_through(self):
        timing = LinkTimingConfig(decode_phit_times=0)
        rx = LinkReceiver(geometry(), timing)
        tx = LinkTransmitter(8)
        cost = transfer_flit(tx, rx, data_flit(), vc_index=0)
        # Control word + 8 phits: 9 phit times, no residual drain.
        assert cost == 9

    def test_transfer_cost_includes_decode(self):
        fast = LinkReceiver(geometry(), LinkTimingConfig(0))
        slow = LinkReceiver(geometry(), LinkTimingConfig(3))
        tx = LinkTransmitter(8)
        fast_cost = transfer_flit(tx, fast, data_flit(), 0)
        slow_cost = transfer_flit(tx, slow, data_flit(), 0)
        assert slow_cost >= fast_cost

    def test_control_word_vc_validated(self):
        rx = LinkReceiver(geometry(num_vcs=2))
        with pytest.raises(ValueError):
            rx.push_control(ControlWord(5), data_flit())

    def test_phit_without_control_rejected(self):
        rx = LinkReceiver(geometry())
        phit = fragment_into_phits(data_flit(), 8)[0]
        with pytest.raises(RuntimeError, match="no control word"):
            rx.push_phit(phit)

    def test_interleaved_flit_rejected(self):
        rx = LinkReceiver(geometry(), LinkTimingConfig(0))
        a, b = data_flit(1), data_flit(2)
        rx.push_control(ControlWord(0), a)
        wrong = fragment_into_phits(b, 8)[0]
        with pytest.raises(RuntimeError, match="arrived while receiving"):
            rx.push_phit(wrong)

    def test_flits_to_different_vcs(self):
        rx = LinkReceiver(geometry())
        tx = LinkTransmitter(8)
        a, b = data_flit(1), data_flit(2)
        transfer_flit(tx, rx, a, vc_index=0)
        transfer_flit(tx, rx, b, vc_index=3)
        assert rx.vcm.read_flit(0) is a
        assert rx.vcm.read_flit(3) is b

    def test_paper_phit_count(self):
        """128-bit flits / 16-bit phits: a frame is 1 + 8 phit times,
        matching the flit-cycle arithmetic the paper builds on."""
        rx = LinkReceiver(geometry(phits=8), LinkTimingConfig(0))
        tx = LinkTransmitter(8)
        assert transfer_flit(tx, rx, data_flit(), 0) == 9
