"""Tests for the per-output-link bandwidth allocation registers (§4.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bandwidth import AllocationError, BandwidthAllocator, BandwidthRequest


class TestBandwidthRequest:
    def test_cbr_defaults_peak_to_permanent(self):
        r = BandwidthRequest(10)
        assert r.effective_peak == 10
        assert not r.is_vbr

    def test_vbr_has_distinct_peak(self):
        r = BandwidthRequest(10, 25)
        assert r.effective_peak == 25
        assert r.is_vbr

    def test_rejects_nonpositive_permanent(self):
        with pytest.raises(ValueError):
            BandwidthRequest(0)

    def test_rejects_peak_below_permanent(self):
        with pytest.raises(ValueError):
            BandwidthRequest(10, 5)

    def test_peak_equal_permanent_is_cbr_like(self):
        r = BandwidthRequest(10, 10)
        assert not r.is_vbr


class TestCbrAdmission:
    def test_admits_until_round_full(self):
        alloc = BandwidthAllocator(round_length=100)
        assert alloc.allocate(BandwidthRequest(60))
        assert alloc.allocate(BandwidthRequest(40))
        assert not alloc.allocate(BandwidthRequest(1))
        assert alloc.allocated_cycles == 100
        assert alloc.active_connections == 2

    def test_exact_fill_allowed(self):
        alloc = BandwidthAllocator(round_length=100)
        assert alloc.allocate(BandwidthRequest(100))
        assert alloc.utilisation == pytest.approx(1.0)

    def test_release_frees_capacity(self):
        alloc = BandwidthAllocator(round_length=100)
        request = BandwidthRequest(100)
        alloc.allocate(request)
        alloc.release(request)
        assert alloc.allocated_cycles == 0
        assert alloc.active_connections == 0
        assert alloc.allocate(BandwidthRequest(50))

    def test_release_unallocated_rejected(self):
        alloc = BandwidthAllocator(round_length=100)
        with pytest.raises(AllocationError):
            alloc.release(BandwidthRequest(10))

    def test_release_on_idle_link_rejected(self):
        alloc = BandwidthAllocator(round_length=100)
        alloc.allocated_cycles = 20  # simulate corruption
        with pytest.raises(AllocationError):
            alloc.release(BandwidthRequest(10))

    def test_best_effort_reservation(self):
        # §4.2: reserve some bandwidth/round for best-effort traffic.
        alloc = BandwidthAllocator(round_length=100, best_effort_reserved_fraction=0.2)
        assert alloc.allocatable_cycles == 80
        assert not alloc.allocate(BandwidthRequest(81))
        assert alloc.allocate(BandwidthRequest(80))


class TestVbrAdmission:
    def test_permanent_counts_against_register_one(self):
        alloc = BandwidthAllocator(round_length=100, concurrency_factor=2.0)
        assert alloc.allocate(BandwidthRequest(30, 60))
        assert alloc.allocated_cycles == 30
        assert alloc.peak_cycles == 60

    def test_peak_budget_is_concurrency_times_round(self):
        alloc = BandwidthAllocator(round_length=100, concurrency_factor=2.0)
        assert alloc.peak_budget == pytest.approx(200.0)
        assert alloc.allocate(BandwidthRequest(10, 150))
        # Second VBR peak would exceed 200 total.
        assert not alloc.allocate(BandwidthRequest(10, 60))
        assert alloc.allocate(BandwidthRequest(10, 50))

    def test_vbr_release_restores_both_registers(self):
        alloc = BandwidthAllocator(round_length=100)
        request = BandwidthRequest(30, 60)
        alloc.allocate(request)
        alloc.release(request)
        assert alloc.allocated_cycles == 0
        assert alloc.peak_cycles == 0

    def test_permanent_sum_still_bounded(self):
        alloc = BandwidthAllocator(round_length=100, concurrency_factor=10.0)
        assert alloc.allocate(BandwidthRequest(80, 90))
        assert not alloc.allocate(BandwidthRequest(30, 40))

    def test_peak_oversubscription_metric(self):
        alloc = BandwidthAllocator(round_length=100, concurrency_factor=2.0)
        alloc.allocate(BandwidthRequest(10, 150))
        assert alloc.peak_oversubscription == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthAllocator(0)
        with pytest.raises(ValueError):
            BandwidthAllocator(100, concurrency_factor=0.9)
        with pytest.raises(ValueError):
            BandwidthAllocator(100, best_effort_reserved_fraction=-0.1)


class TestRenegotiation:
    def test_upgrade_within_capacity(self):
        alloc = BandwidthAllocator(round_length=100)
        old = BandwidthRequest(20)
        alloc.allocate(old)
        assert alloc.renegotiate(old, BandwidthRequest(50))
        assert alloc.allocated_cycles == 50
        assert alloc.active_connections == 1

    def test_failed_upgrade_rolls_back(self):
        alloc = BandwidthAllocator(round_length=100)
        old = BandwidthRequest(20)
        alloc.allocate(old)
        alloc.allocate(BandwidthRequest(70))
        assert not alloc.renegotiate(old, BandwidthRequest(40))
        assert alloc.allocated_cycles == 90  # unchanged
        assert alloc.active_connections == 2

    def test_downgrade_always_succeeds(self):
        alloc = BandwidthAllocator(round_length=100)
        old = BandwidthRequest(80)
        alloc.allocate(old)
        assert alloc.renegotiate(old, BandwidthRequest(10))
        assert alloc.allocated_cycles == 10


class TestInvariants:
    @given(
        st.lists(
            st.tuples(st.integers(1, 30), st.integers(0, 40)),
            max_size=50,
        )
    )
    def test_registers_equal_sum_of_live_requests(self, demands):
        """After any allocate/release interleaving the registers equal the
        footprint of currently-admitted requests exactly."""
        alloc = BandwidthAllocator(round_length=200, concurrency_factor=3.0)
        live = []
        for permanent, extra in demands:
            request = BandwidthRequest(permanent, permanent + extra if extra else 0)
            if alloc.allocate(request):
                live.append(request)
            elif live:
                done = live.pop(0)
                alloc.release(done)
            expected_perm = sum(r.permanent_cycles for r in live)
            expected_peak = sum(r.effective_peak for r in live if r.is_vbr)
            assert alloc.allocated_cycles == expected_perm
            assert alloc.peak_cycles == expected_peak
            assert alloc.active_connections == len(live)
            assert alloc.allocated_cycles <= alloc.allocatable_cycles
            assert alloc.peak_cycles <= alloc.peak_budget
