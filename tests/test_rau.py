"""Tests for the routing-and-arbitration unit's channel mapping stores."""

import pytest
from hypothesis import given, strategies as st

from repro.core.rau import (
    ChannelMappingStore,
    MappingError,
    RoutingArbitrationUnit,
)


class TestChannelMappingStore:
    def test_add_and_lookup(self):
        store = ChannelMappingStore()
        store.add(1, (0, 5), (3, 7))
        forward = store.forward((0, 5))
        assert forward.output_channel == (3, 7)
        backward = store.backward((3, 7))
        assert backward.input_channel == (0, 5)
        assert len(store) == 1

    def test_missing_lookups_return_none(self):
        store = ChannelMappingStore()
        assert store.forward((0, 0)) is None
        assert store.backward((0, 0)) is None

    def test_duplicate_input_rejected(self):
        store = ChannelMappingStore()
        store.add(1, (0, 5), (3, 7))
        with pytest.raises(MappingError):
            store.add(2, (0, 5), (2, 2))

    def test_duplicate_output_rejected(self):
        store = ChannelMappingStore()
        store.add(1, (0, 5), (3, 7))
        with pytest.raises(MappingError):
            store.add(2, (1, 1), (3, 7))

    def test_remove_by_input(self):
        store = ChannelMappingStore()
        store.add(1, (0, 5), (3, 7))
        removed = store.remove_by_input((0, 5))
        assert removed.connection_id == 1
        assert len(store) == 0
        assert store.backward((3, 7)) is None

    def test_remove_missing_input_rejected(self):
        with pytest.raises(MappingError):
            ChannelMappingStore().remove_by_input((0, 0))

    def test_remove_by_connection(self):
        store = ChannelMappingStore()
        store.add(1, (0, 5), (3, 7))
        store.add(1, (1, 2), (2, 2))
        store.add(9, (4, 4), (5, 5))
        assert store.remove_by_connection(1) == 2
        assert len(store) == 1
        assert store.forward((4, 4)) is not None

    def test_mappings_iteration_sorted(self):
        store = ChannelMappingStore()
        store.add(1, (2, 0), (0, 0))
        store.add(2, (0, 1), (1, 1))
        inputs = [m.input_channel for m in store.mappings()]
        assert inputs == [(0, 1), (2, 0)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            max_size=30,
            unique=True,
        )
    )
    def test_consistency_invariant(self, channels):
        """Direct and reverse stores stay mirror images under add/remove."""
        store = ChannelMappingStore()
        added = []
        for i, (a, b) in enumerate(channels):
            input_channel, output_channel = (0, a), (1, b)
            if store.forward(input_channel) or store.backward(output_channel):
                continue
            store.add(i, input_channel, output_channel)
            added.append(input_channel)
            store.check_consistency()
        for input_channel in added[::2]:
            store.remove_by_input(input_channel)
            store.check_consistency()

    def test_check_consistency_detects_corruption(self):
        store = ChannelMappingStore()
        store.add(1, (0, 0), (1, 1))
        store._reverse.clear()  # simulate corruption
        with pytest.raises(MappingError):
            store.check_consistency()


class TestRoutingArbitrationUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            RoutingArbitrationUnit(0)

    def test_register_and_next_hop(self):
        rau = RoutingArbitrationUnit(8)
        rau.register_connection(5, 0, 10, 3, 20)
        assert rau.next_hop(0, 10) == (3, 20)
        assert rau.previous_hop(3, 20) == (0, 10)

    def test_unknown_channels_return_none(self):
        rau = RoutingArbitrationUnit(8)
        assert rau.next_hop(0, 0) is None
        assert rau.previous_hop(0, 0) is None

    def test_release_connection(self):
        rau = RoutingArbitrationUnit(8)
        rau.register_connection(5, 0, 10, 3, 20)
        assert rau.release_connection(5) == 1
        assert rau.next_hop(0, 10) is None

    def test_port_range_checked(self):
        rau = RoutingArbitrationUnit(4)
        with pytest.raises(IndexError):
            rau.register_connection(1, 4, 0, 0, 0)
        with pytest.raises(IndexError):
            rau.register_connection(1, 0, 0, 9, 0)
