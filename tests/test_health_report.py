"""Health snapshots, JSONL trails, sweep rollups and the HTML dashboard."""

import json

from repro.obs.health import (
    HEALTH_SCHEMA,
    ROLLUP_SCHEMA,
    HealthWriter,
    build_health_snapshot,
    dropped_total,
    merge_health,
    read_health,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.report import render_report, render_rollup, sparkline_svg
from repro.obs.slo import SloBudget, SloEngine


def _recorder_with_activity() -> FlightRecorder:
    recorder = FlightRecorder(manifest={"seed": 1})
    recorder.telemetry.sample("churn.active_sessions", 100, 3.0)
    recorder.telemetry.sample("churn.active_sessions", 200, 5.0)
    span = recorder.spans.begin("session 1", "session", 0)
    setup = recorder.spans.begin("setup", "setup", 0, parent=span)
    recorder.spans.end(setup, 14)
    recorder.spans.end(span, 400)
    recorder.spans.begin("session 2", "session", 450)  # still open
    return recorder


def _breached_engine() -> SloEngine:
    engine = SloEngine([SloBudget("blocking_probability", 0.1)], min_samples=1)
    engine.observe_ratio(
        "blocking_probability", 9, 10, time=77, session_id=4, span_id=2
    )
    return engine


class TestHealthSnapshot:
    def test_empty_snapshot_is_valid(self):
        snapshot = build_health_snapshot(cycle=0)
        assert snapshot["schema"] == HEALTH_SCHEMA
        assert snapshot["channels"] == {}
        assert snapshot["slo"] == []
        assert not snapshot["slo_breached"]
        assert dropped_total(snapshot) == 0
        json.dumps(snapshot)  # JSON-safe

    def test_snapshot_captures_recorder_and_slo(self):
        snapshot = build_health_snapshot(
            cycle=500,
            recorder=_recorder_with_activity(),
            slo=_breached_engine(),
            extra={"active_sessions": 1},
        )
        channel = snapshot["channels"]["churn.active_sessions"]
        assert channel["count"] == 2
        assert channel["last"] == 5.0
        assert snapshot["spans"] == {"recorded": 3, "open": 1, "dropped": 0}
        assert snapshot["slo_breached"]
        assert snapshot["slo_violations"] == 1
        (violation,) = snapshot["violations"]
        assert violation["session_id"] == 4
        assert snapshot["extra"] == {"active_sessions": 1}
        json.dumps(snapshot)

    def test_dropped_total_sums_every_store(self):
        snapshot = {"dropped": {"trace": 3, "spans": 2, "telemetry": 5}}
        assert dropped_total(snapshot) == 10


class TestHealthTrail:
    def test_writer_appends_jsonl_and_read_round_trips(self, tmp_path):
        path = tmp_path / "trail" / "health.jsonl"
        writer = HealthWriter(path)
        writer.write(build_health_snapshot(cycle=100))
        writer.write(build_health_snapshot(cycle=200))
        assert writer.written == 2
        snapshots = read_health(path)
        assert [s["cycle"] for s in snapshots] == [100, 200]

    def test_read_accepts_a_json_array(self, tmp_path):
        path = tmp_path / "health.json"
        path.write_text(json.dumps([build_health_snapshot(cycle=5)]))
        assert read_health(path)[0]["cycle"] == 5

    def test_read_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_health(path) == []


class TestMergeHealth:
    def test_rollup_aggregates_breaches_and_drops(self):
        healthy = build_health_snapshot(cycle=100)
        sick = build_health_snapshot(
            cycle=200, recorder=None, slo=_breached_engine()
        )
        sick["dropped"]["trace"] = 7
        rollup = merge_health([("load=0.2", healthy), ("load=0.8", sick)])
        assert rollup["schema"] == ROLLUP_SCHEMA
        assert rollup["point_count"] == 2
        assert rollup["breached_points"] == ["load=0.8"]
        assert rollup["dropped_sample_points"] == ["load=0.8"]
        assert rollup["total_violations"] == 1
        assert rollup["total_dropped"] == 7
        assert not rollup["ok"]
        json.dumps(rollup)

    def test_all_healthy_rollup_is_ok(self):
        rollup = merge_health([("a", build_health_snapshot(cycle=1))])
        assert rollup["ok"]


class TestSparkline:
    def test_empty_series_renders_placeholder(self):
        svg = sparkline_svg([])
        assert svg.startswith("<svg")
        assert "polyline" not in svg

    def test_series_renders_line_dot_and_tooltips(self):
        svg = sparkline_svg([(0, 1.0), (100, 3.0), (200, 2.0)])
        assert svg.count("<circle") == 5  # ring + dot + 3 hover targets
        assert "<polyline" in svg
        assert "<title>cycle 200: 2</title>" in svg
        assert "NaN" not in svg

    def test_flat_series_does_not_divide_by_zero(self):
        svg = sparkline_svg([(0, 4.0), (10, 4.0)])
        assert "NaN" not in svg and "polyline" in svg


class TestRenderReport:
    def test_single_run_dashboard(self):
        recorder = _recorder_with_activity()
        trail = [
            build_health_snapshot(
                cycle=cycle, recorder=recorder, slo=_breached_engine(),
                extra={"active_sessions": 2},
            )
            for cycle in (100, 200)
        ]
        export = recorder.export()
        html = render_report(trail, export=export, title="unit run")
        assert "<!doctype html>" in html.lower()
        assert "unit run" in html
        assert "✗" in html  # breached hero/status carries an icon
        assert "blocking_probability" in html
        assert "churn.active_sessions" in html
        assert "<svg" in html
        # Worst-sessions section names the slow session's span tree.
        assert "session 1" in html
        assert "prefers-color-scheme: dark" in html

    def test_dashboard_without_export_or_slo(self):
        trail = [build_health_snapshot(cycle=100)]
        html = render_report(trail, title="bare")
        assert "No SLO budgets declared" in html
        assert "run complete" in html  # neutral hero when nothing is gated

    def test_rollup_page(self):
        sick = build_health_snapshot(cycle=1, slo=_breached_engine())
        rollup = merge_health(
            [("load=0.2", build_health_snapshot(cycle=1)), ("load=0.8", sick)]
        )
        html = render_rollup(rollup, title="sweep")
        assert "load=0.2" in html and "load=0.8" in html
        assert "✗" in html and "✓" in html
