"""Tests for resumable sweeps: a killed worker's point continues from its
checkpoint rather than recomputing from cycle 0, and the sweep-level error
type survives the process boundary."""

import pickle

import pytest

from repro.core.config import RouterConfig
from repro.harness.single_router import ExperimentSpec, SimulatedWorkerCrash
from repro.harness.sweep import Checkpointing, SweepAxis, SweepPointError, run_sweep

TINY = RouterConfig(num_ports=4, vcs_per_port=32, enforce_round_budgets=False)

METRICS = ("mean_delay_cycles", "mean_jitter_cycles", "utilisation")


def tiny_spec(**overrides):
    base = dict(
        target_load=0.4,
        config=TINY,
        candidates=4,
        seed=3,
        warmup_cycles=300,
        measure_cycles=1500,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSweepPointErrorPickling:
    def test_round_trips_through_pickle(self):
        error = SweepPointError("seed=5, target_load=0.4", ValueError("boom"))
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, SweepPointError)
        assert clone.point == error.point
        assert clone.cause_repr == error.cause_repr
        assert str(clone) == str(error)

    def test_cause_is_plain_data(self):
        error = SweepPointError("seed=5", ValueError("boom"))
        assert error.cause_repr == "ValueError('boom')"
        assert error.__reduce__() == (
            SweepPointError,
            ("seed=5", "ValueError('boom')"),
        )


class TestCheckpointing:
    def test_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            Checkpointing(directory=tmp_path, every=0)

    def test_point_paths_are_stable_and_distinct(self, tmp_path):
        policy = Checkpointing(directory=tmp_path, every=100)
        a = policy.point_path((5, 0.4))
        assert a == policy.point_path((5, 0.4))
        assert a != policy.point_path((5, 0.6))
        assert a.parent == tmp_path
        assert a.name.startswith("point-5_0.4-")

    def test_renamed_values_cannot_collide(self, tmp_path):
        # 'a_b' and 'a/b' sanitise to the same human prefix; the digest
        # keeps their checkpoint files apart.
        policy = Checkpointing(directory=tmp_path, every=100)
        assert policy.point_path(("a_b",)) != policy.point_path(("a/b",))


class TestKilledWorkerResumes:
    def test_crashed_sweep_resumes_from_checkpoint(self, tmp_path):
        """The acceptance scenario: kill a worker mid-point, rerun the
        sweep, and the point continues from its checkpoint — with rows
        bit-identical to a sweep that never crashed."""
        base = tiny_spec()
        axes = [SweepAxis("seed", (5, 6))]
        straight = run_sweep(base, axes)

        crashing = Checkpointing(
            directory=tmp_path, every=600, crash_at_cycle=1000
        )
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(base, axes, checkpointing=crashing)
        assert "SimulatedWorkerCrash" in excinfo.value.cause_repr
        checkpoints = list(tmp_path.glob("*.ckpt"))
        assert checkpoints, "the killed point left no checkpoint to resume"

        rerun = run_sweep(
            base, axes, checkpointing=Checkpointing(directory=tmp_path, every=600)
        )
        lineages = {
            key: manifest["checkpoint"]
            for key, manifest in rerun.manifests.items()
        }
        # The killed point resumed mid-run instead of recomputing from 0;
        # the untouched point ran straight through.
        assert lineages[(5,)]["resumed_from_cycle"] is not None
        assert lineages[(5,)]["resumed_from_cycle"] > 0
        assert lineages[(6,)]["resumed_from_cycle"] is None
        assert rerun.rows(METRICS) == straight.rows(METRICS)

    def test_crash_hook_spares_resumed_attempts(self, tmp_path):
        # A resumed point must not re-trigger the crash hook, or reruns
        # could never make progress.
        spec = tiny_spec(seed=5)
        axes = [SweepAxis("seed", (5,))]
        policy = Checkpointing(directory=tmp_path, every=600, crash_at_cycle=1000)
        with pytest.raises(SweepPointError):
            run_sweep(spec, axes, checkpointing=policy)
        rerun = run_sweep(spec, axes, checkpointing=policy)
        lineage = rerun.manifests[(5,)]["checkpoint"]
        assert lineage["resumed_from_cycle"] is not None

    def test_checkpointed_rows_match_parallel_plain_sweep(self, tmp_path):
        base = tiny_spec()
        axes = [SweepAxis("seed", (3, 4))]
        plain = run_sweep(base, axes, jobs=2)
        checkpointed = run_sweep(
            base,
            axes,
            jobs=2,
            checkpointing=Checkpointing(directory=tmp_path, every=700),
        )
        assert checkpointed.rows(METRICS) == plain.rows(METRICS)
        for manifest in checkpointed.manifests.values():
            assert manifest["checkpoint"]["checkpoints_written"] >= 1

    def test_simulated_crash_is_a_runtime_error(self):
        # The hook models a hard kill; sweeps surface it like any crash.
        assert issubclass(SimulatedWorkerCrash, RuntimeError)
