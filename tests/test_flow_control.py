"""Tests for credit-based link-level flow control."""

import pytest
from hypothesis import given, strategies as st

from repro.core.flow_control import CreditError, LinkFlowControl


class TestLinkFlowControl:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkFlowControl(0, 4)
        with pytest.raises(ValueError):
            LinkFlowControl(4, 0)

    def test_starts_full(self):
        fc = LinkFlowControl(4, 3)
        assert all(fc.credits(vc) == 3 for vc in range(4))
        assert fc.credits_available.count() == 4

    def test_consume_and_replenish(self):
        fc = LinkFlowControl(2, 2)
        fc.consume(0)
        assert fc.credits(0) == 1
        assert fc.in_flight(0) == 1
        fc.replenish(0)
        assert fc.credits(0) == 2
        assert fc.in_flight(0) == 0

    def test_bit_vector_tracks_exhaustion(self):
        fc = LinkFlowControl(2, 1)
        fc.consume(0)
        assert not fc.credits_available.test(0)
        assert fc.credits_available.test(1)
        fc.replenish(0)
        assert fc.credits_available.test(0)

    def test_send_without_credit_is_protocol_violation(self):
        fc = LinkFlowControl(1, 1)
        fc.consume(0)
        assert not fc.has_credit(0)
        with pytest.raises(CreditError):
            fc.consume(0)

    def test_credit_overflow_is_protocol_violation(self):
        fc = LinkFlowControl(1, 2)
        with pytest.raises(CreditError):
            fc.replenish(0)

    def test_infinite_mode_never_depletes(self):
        fc = LinkFlowControl(1, 1, infinite=True)
        for _ in range(100):
            fc.consume(0)
        assert fc.has_credit(0)
        assert fc.in_flight(0) == 0
        fc.replenish(0)  # no-op, no error

    def test_vc_range_checked(self):
        fc = LinkFlowControl(2, 2)
        with pytest.raises(IndexError):
            fc.consume(2)
        with pytest.raises(IndexError):
            fc.has_credit(-1)

    def test_stall_counter(self):
        fc = LinkFlowControl(1, 1)
        fc.note_stall()
        fc.note_stall()
        assert fc.credit_stalls == 2

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 3)), max_size=200))
    def test_credits_always_within_bounds(self, ops):
        """Invariant: 0 <= credits <= depth, vector mirrors counters."""
        depth = 3
        fc = LinkFlowControl(4, depth)
        for is_consume, vc in ops:
            if is_consume:
                if fc.has_credit(vc):
                    fc.consume(vc)
            else:
                if fc.in_flight(vc) > 0:
                    fc.replenish(vc)
            assert 0 <= fc.credits(vc) <= depth
            assert fc.credits_available.test(vc) == (fc.credits(vc) > 0)

    @given(st.integers(1, 8), st.integers(1, 6))
    def test_conservation(self, vcs, depth):
        """credits + in_flight == depth at every point."""
        fc = LinkFlowControl(vcs, depth)
        for vc in range(vcs):
            sent = 0
            while fc.has_credit(vc):
                fc.consume(vc)
                sent += 1
                assert fc.credits(vc) + fc.in_flight(vc) == depth
            assert sent == depth
