"""Tests for the traffic generators and the load planner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.core.router import Router
from repro.core.switch_scheduler import GreedyPriorityScheduler
from repro.core.virtual_channel import ServiceClass
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.traffic.best_effort import PacketSource, make_control_word
from repro.traffic.cbr import CbrSource
from repro.traffic.load import ConnectionSpec, LoadPlanner, offered_load_of
from repro.traffic.rates import PAPER_RATE_SET, rate_name
from repro.traffic.vbr import DEFAULT_GOP, MpegProfile, VbrSource
from repro.core.flit import ControlCommand


def small_router(vcs=8, enforce=False):
    config = RouterConfig(
        num_ports=4, vcs_per_port=vcs, enforce_round_budgets=enforce
    )
    sim = Simulator()
    router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)
    return router, sim, config


class TestRates:
    def test_paper_set_has_nine_rates(self):
        assert len(PAPER_RATE_SET) == 9
        assert PAPER_RATE_SET[0] == 64e3
        assert PAPER_RATE_SET[-1] == 120e6

    def test_rate_names(self):
        assert rate_name(64e3) == "64 Kbps"
        assert rate_name(1.54e6) == "1.54 Mbps"
        assert rate_name(3e6) == "3 Mbps"  # generic fallback
        assert rate_name(5e5) == "500 Kbps"


class TestCbrSource:
    def test_interarrival_spacing(self):
        router, sim, config = small_router()
        vc = router.open_connection(
            1, 0, 1, BandwidthRequest(2), interarrival_cycles=8.0
        )
        rate = config.link_rate_bps / 8.0
        source = CbrSource(sim, router, 1, 0, vc, rate, config)
        source.start()
        sim.run(81)
        # One flit every 8 cycles: about 10 over 80 cycles.
        assert source.flits_generated in (10, 11)
        assert source.flits_injected == source.flits_generated

    def test_phase_delays_first_arrival(self):
        router, sim, config = small_router()
        vc = router.open_connection(
            1, 0, 1, BandwidthRequest(1), interarrival_cycles=100.0
        )
        rate = config.link_rate_bps / 100.0
        source = CbrSource(sim, router, 1, 0, vc, rate, config, phase=50.0)
        source.start()
        sim.run(49)
        assert source.flits_generated == 0
        sim.run(2)
        assert source.flits_generated == 1

    def test_negative_phase_rejected(self):
        router, sim, config = small_router()
        with pytest.raises(ValueError):
            CbrSource(sim, router, 1, 0, 0, 1e6, config, phase=-1.0)

    def test_stop_time(self):
        router, sim, config = small_router()
        vc = router.open_connection(
            1, 0, 1, BandwidthRequest(2), interarrival_cycles=10.0
        )
        rate = config.link_rate_bps / 10.0
        source = CbrSource(sim, router, 1, 0, vc, rate, config, stop_time=30)
        source.start()
        sim.run(100)
        assert source.flits_generated <= 4

    def test_backpressure_holds_flits_without_loss(self):
        # Tiny VC buffer and a fast source: the interface queue grows but
        # everything is delivered in order eventually.
        config = RouterConfig(
            num_ports=4, vcs_per_port=4, vc_buffer_flits=2,
            enforce_round_budgets=False,
        )
        sim = Simulator()
        router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)
        # Two connections on the same output so one is regularly blocked.
        vc_a = router.open_connection(1, 0, 2, BandwidthRequest(4),
                                      interarrival_cycles=2.0)
        vc_b = router.open_connection(2, 1, 2, BandwidthRequest(4),
                                      interarrival_cycles=2.0)
        rate = config.link_rate_bps / 2.0
        a = CbrSource(sim, router, 1, 0, vc_a, rate, config)
        b = CbrSource(sim, router, 2, 1, vc_b, rate, config)
        a.start()
        b.start()
        sim.run(200)
        total_generated = a.flits_generated + b.flits_generated
        delivered = router.stats.get_counter("flits_switched")
        buffered = router.buffered_flits()
        pending = a.backlog + b.backlog
        assert delivered + buffered + pending == total_generated
        assert a.max_interface_queue >= 1 or b.max_interface_queue >= 1


class TestVbrSource:
    def profile(self, rate=5e6):
        return MpegProfile(mean_rate_bps=rate, frame_rate_hz=30.0, sigma=0.2)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            MpegProfile(mean_rate_bps=0)
        with pytest.raises(ValueError):
            MpegProfile(mean_rate_bps=1e6, frame_rate_hz=0)
        with pytest.raises(ValueError):
            MpegProfile(mean_rate_bps=1e6, gop=())
        with pytest.raises(ValueError):
            MpegProfile(mean_rate_bps=1e6, gop=("X",))
        with pytest.raises(ValueError):
            MpegProfile(mean_rate_bps=1e6, sigma=-1.0)

    def test_gop_ratio_arithmetic(self):
        profile = self.profile()
        # Mean over a whole GOP equals the declared mean frame size.
        gop_bits = sum(profile.frame_bits(kind) for kind in profile.gop)
        assert gop_bits / len(profile.gop) == pytest.approx(
            profile.mean_frame_bits
        )
        assert profile.frame_bits("I") > profile.frame_bits("P")
        assert profile.frame_bits("P") > profile.frame_bits("B")

    def test_peak_rate_above_mean(self):
        profile = self.profile()
        assert profile.peak_rate_bps() > profile.mean_rate_bps

    def test_generated_rate_tracks_profile(self):
        router, sim, config = small_router()
        # A high frame rate keeps the frame period short (in cycles) so a
        # modest simulation covers many GOPs.
        profile = MpegProfile(mean_rate_bps=20e6, frame_rate_hz=3000.0, sigma=0.2)
        vc = router.open_connection(
            1, 0, 1, BandwidthRequest(1, 4), service_class=ServiceClass.VBR,
        )
        source = VbrSource(
            sim, router, 1, 0, vc, profile, config, SeededRng(1, "vbr")
        )
        source.start()
        cycles = 400000
        sim.run(cycles)
        assert source.frames_generated > 100
        generated_bits = source.flits_generated * config.flit_size_bits
        seconds = cycles * config.flit_cycle_seconds
        measured = generated_bits / seconds
        assert measured == pytest.approx(20e6, rel=0.25)

    def test_frames_fragmented_with_single_tail(self):
        router, sim, config = small_router()
        profile = self.profile(rate=50e6)
        vc = router.open_connection(
            1, 0, 1, BandwidthRequest(1, 8), service_class=ServiceClass.VBR,
        )
        source = VbrSource(
            sim, router, 1, 0, vc, profile, config, SeededRng(2, "vbr2")
        )
        source.start()
        sim.run(1)  # exactly one frame generated at t=0
        assert source.frames_generated == 1
        assert source.flits_generated >= 1

    def test_frame_abort_on_backlog(self):
        router, sim, config = small_router()
        profile = MpegProfile(mean_rate_bps=600e6, frame_rate_hz=1000.0, sigma=0)
        vc = router.open_connection(
            1, 0, 1, BandwidthRequest(1, 2), service_class=ServiceClass.VBR,
        )
        # Router enforces budgets? disabled; contention comes from rate >
        # link share anyway because frame_rate is extreme.
        source = VbrSource(
            sim, router, 1, 0, vc, profile, config, SeededRng(3, "vbr3")
        )
        source.abort_backlog_frames = 1.0
        source.start()
        sim.run(50000)
        assert source.frames_aborted > 0


class TestPacketSource:
    def test_poisson_generation_and_delivery(self):
        router, sim, config = small_router()
        source = PacketSource(
            sim, router, -1, 0, mean_interarrival_cycles=20.0,
            rng=SeededRng(4, "be"), config=config,
        )
        source.start()
        sim.run(2000)
        assert source.packets_generated == pytest.approx(100, rel=0.5)
        assert source.packets_injected == source.packets_generated

    def test_validation(self):
        router, sim, config = small_router()
        with pytest.raises(ValueError):
            PacketSource(sim, router, -1, 0, 0.0, SeededRng(1, "x"), config)
        with pytest.raises(ValueError):
            PacketSource(
                sim, router, -1, 0, 5.0, SeededRng(1, "x"), config,
                service_class=ServiceClass.CBR,
            )

    def test_control_class_cut_through(self):
        router, sim, config = small_router()
        source = PacketSource(
            sim, router, -2, 0, mean_interarrival_cycles=50.0,
            rng=SeededRng(5, "ctl"), config=config,
            service_class=ServiceClass.CONTROL,
        )
        source.start()
        sim.run(2000)
        assert source.packets_injected > 0
        assert router.stats.get_counter("immediate_cut_throughs") > 0

    def test_make_control_word(self):
        flit = make_control_word(7, ControlCommand.SET_PRIORITY, 3, now=10)
        assert flit.connection_id == 7
        assert flit.command is ControlCommand.SET_PRIORITY
        assert flit.argument == 3
        assert flit.is_tail


class TestLoadPlanner:
    def config(self):
        return RouterConfig(num_ports=8, vcs_per_port=256)

    def test_reaches_target_load(self):
        planner = LoadPlanner(self.config(), SeededRng(1, "plan"))
        plan = planner.plan(0.7)
        assert plan.offered_load == pytest.approx(0.7, abs=0.02)

    def test_rejects_bad_target(self):
        planner = LoadPlanner(self.config(), SeededRng(1, "plan"))
        with pytest.raises(ValueError):
            planner.plan(0.0)
        with pytest.raises(ValueError):
            planner.plan(1.5)

    def test_rejects_empty_rate_set(self):
        with pytest.raises(ValueError):
            LoadPlanner(self.config(), SeededRng(1, "x"), rate_set=())

    def test_offered_load_of(self):
        config = self.config()
        specs = [ConnectionSpec(0, 0, 0, config.link_rate_bps)]
        assert offered_load_of(specs, config) == pytest.approx(1 / 8)

    def test_deterministic_given_seed(self):
        a = LoadPlanner(self.config(), SeededRng(2, "p")).plan(0.5)
        b = LoadPlanner(self.config(), SeededRng(2, "p")).plan(0.5)
        assert a.specs == b.specs

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 200), st.sampled_from([0.3, 0.6, 0.9, 0.95]))
    def test_plans_always_admissible(self, seed, load):
        """Every planned connection must pass the router's real admission
        (the planner and the admission registers share their arithmetic)."""
        config = self.config()
        planner = LoadPlanner(config, SeededRng(seed, "adm"))
        plan = planner.plan(load)
        assert plan.offered_load <= load + 0.01
        sim = Simulator()
        router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)
        for spec in plan.specs:
            request = BandwidthRequest(config.rate_to_cycles_per_round(spec.rate_bps))
            vc = router.open_connection(
                spec.connection_id, spec.input_port, spec.output_port, request
            )
            assert vc is not None, f"admission refused planned {spec}"

    def test_high_load_reachable(self):
        planner = LoadPlanner(self.config(), SeededRng(3, "hi"))
        plan = planner.plan(0.95)
        assert plan.offered_load >= 0.92
