"""Router-level property tests: conservation and determinism under random
workloads driven end to end through the scheduling pipeline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.flit import Flit, FlitType
from repro.core.priority import BiasedPriority, FixedPriority
from repro.core.router import Router
from repro.core.switch_scheduler import (
    DecScheduler,
    GreedyPriorityScheduler,
    PerfectSwitchScheduler,
)
from repro.core.virtual_channel import ServiceClass
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng

CONFIG = RouterConfig(
    num_ports=4, vcs_per_port=8, round_factor=4, enforce_round_budgets=False
)

# A random workload: (input port, output port, inter-arrival cycles).
workloads = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(4, 40)),
    min_size=1,
    max_size=10,
)


def run_workload(workload, scheduler_factory, scheme, cycles=400, seed=1):
    sim = Simulator()
    router = Router(
        CONFIG, scheme, scheduler_factory(), sim,
        rng=SeededRng(seed, "prop"), checked=True,
        selection="per_output",
    )
    injected = []
    opened = 0
    for connection_id, (in_port, out_port, period) in enumerate(workload, start=1):
        vc_index = router.open_connection(
            connection_id, in_port, out_port, BandwidthRequest(1),
            interarrival_cycles=float(period),
        )
        if vc_index is None:
            continue  # port ran out of VCs/bandwidth in this random draw
        opened += 1

        def arrival(cid=connection_id, port=in_port, vc=vc_index, step=period):
            seq = 0
            t = 0
            while t < cycles:
                flit = Flit(FlitType.DATA, connection_id=cid, created=t, sequence=seq)
                yield t, port, vc, flit
                seq += 1
                t += step

        injected.extend(arrival())
    for t, port, vc, flit in injected:
        sim.schedule_at(t, lambda p=port, v=vc, f=flit: router.inject(p, v, f))
    sim.run(cycles)
    return router, injected, opened


class TestConservation:
    @settings(max_examples=20, deadline=None)
    @given(workloads)
    def test_no_flit_lost_or_duplicated(self, workload):
        router, injected, opened = run_workload(
            workload, GreedyPriorityScheduler, BiasedPriority()
        )
        accepted = sum(
            1 for t, p, v, f in injected if f.depart_time is not None
        )
        buffered = router.buffered_flits()
        switched = router.stats.get_counter("flits_switched")
        # Every injected-and-departed flit was switched exactly once.
        assert switched == accepted
        # Everything else is still buffered or was refused at a full VC.
        refused = router.stats.get_counter("inject_blocked")
        assert accepted + buffered + refused >= len(injected) * 0 + accepted
        assert switched + buffered <= len(injected)

    @settings(max_examples=15, deadline=None)
    @given(workloads)
    def test_fifo_preserved_per_connection(self, workload):
        router, injected, opened = run_workload(
            workload, GreedyPriorityScheduler, FixedPriority()
        )
        by_connection = {}
        for t, p, v, flit in injected:
            if flit.depart_time is not None:
                by_connection.setdefault(flit.connection_id, []).append(flit)
        for flits in by_connection.values():
            sequences = [f.sequence for f in flits]
            departures = [f.depart_time for f in flits]
            ordered = sorted(zip(sequences, departures))
            assert [d for _, d in ordered] == sorted(departures)

    @settings(max_examples=10, deadline=None)
    @given(workloads, st.sampled_from(["greedy", "perfect", "dec"]))
    def test_delays_nonnegative_all_schedulers(self, workload, which):
        factory = {
            "greedy": GreedyPriorityScheduler,
            "perfect": lambda: PerfectSwitchScheduler(4),
            "dec": lambda: DecScheduler(SeededRng(5, "dec-prop")),
        }[which]
        router, injected, opened = run_workload(workload, factory, BiasedPriority())
        for t, p, v, flit in injected:
            if flit.depart_time is not None:
                assert flit.switch_delay() >= 1

    @settings(max_examples=10, deadline=None)
    @given(workloads)
    def test_perfect_at_least_as_fast_pointwise_mean(self, workload):
        greedy_router, greedy_inj, _ = run_workload(
            workload, GreedyPriorityScheduler, BiasedPriority()
        )
        perfect_router, perfect_inj, _ = run_workload(
            workload, lambda: PerfectSwitchScheduler(4), BiasedPriority()
        )
        greedy_mean = greedy_router.stats.get_series("switch_delay").mean
        perfect_mean = perfect_router.stats.get_series("switch_delay").mean
        if greedy_mean and perfect_mean:
            assert perfect_mean <= greedy_mean + 1e-9


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(workloads, st.integers(0, 50))
    def test_identical_runs_identical_results(self, workload, seed):
        a_router, a_inj, _ = run_workload(
            workload, GreedyPriorityScheduler, BiasedPriority(), seed=seed
        )
        b_router, b_inj, _ = run_workload(
            workload, GreedyPriorityScheduler, BiasedPriority(), seed=seed
        )
        a_departs = [f.depart_time for _, _, _, f in a_inj]
        b_departs = [f.depart_time for _, _, _, f in b_inj]
        assert a_departs == b_departs
        assert (
            a_router.stats.get_counter("flits_switched")
            == b_router.stats.get_counter("flits_switched")
        )

    @settings(max_examples=10, deadline=None)
    @given(workloads, st.integers(0, 50))
    def test_dec_deterministic_given_seed(self, workload, seed):
        factory = lambda: DecScheduler(SeededRng(seed, "dec-det"))  # noqa: E731
        a_router, a_inj, _ = run_workload(workload, factory, FixedPriority())
        b_router, b_inj, _ = run_workload(workload, factory, FixedPriority())
        assert [f.depart_time for _, _, _, f in a_inj] == [
            f.depart_time for _, _, _, f in b_inj
        ]


class TestStructuralInvariants:
    @settings(max_examples=15, deadline=None)
    @given(workloads)
    def test_invariants_hold_after_random_workload(self, workload):
        router, injected, opened = run_workload(
            workload, GreedyPriorityScheduler, BiasedPriority()
        )
        router.check_invariants()

    @settings(max_examples=10, deadline=None)
    @given(workloads)
    def test_invariants_hold_mid_flight(self, workload):
        """Invariants also hold while traffic is buffered (not drained)."""
        router, injected, opened = run_workload(
            workload, GreedyPriorityScheduler, BiasedPriority(), cycles=37
        )
        router.check_invariants()

    def test_invariants_detect_corruption(self):
        sim = Simulator()
        router = Router(
            CONFIG, BiasedPriority(), GreedyPriorityScheduler(), sim
        )
        router.input_ports[0].status.vector("flits_available").set(3)
        with pytest.raises(AssertionError, match="flits_available desync"):
            router.check_invariants()
