"""Tests for the priority schemes (§4.4, §5.1)."""

import pytest

from repro.core.flit import Flit, FlitType
from repro.core.priority import (
    AgePriority,
    BiasedPriority,
    CLASS_OFFSETS,
    FixedPriority,
    FrozenFlitPriority,
    RatePriority,
    StaticConnectionPriority,
    make_priority_scheme,
)
from repro.core.virtual_channel import ServiceClass, VirtualChannel


def make_vc(service_class=ServiceClass.CBR, interarrival=10.0, static=0.5):
    vc = VirtualChannel(0, 0, 4)
    vc.bind(1, service_class, 0)
    vc.interarrival_cycles = interarrival
    vc.static_priority = static
    return vc


def head_flit(created=0, ready=0):
    flit = Flit(FlitType.DATA, connection_id=1, created=created)
    flit.ready_time = ready
    return flit


class TestBiasedPriority:
    def test_grows_with_waiting_time(self):
        scheme = BiasedPriority()
        vc = make_vc()
        flit = head_flit(created=100)
        p1 = scheme.priority(vc, flit, now=105)
        p2 = scheme.priority(vc, flit, now=110)
        assert p2 > p1

    def test_growth_rate_scales_with_connection_speed(self):
        # The paper: "High speed connections clearly have their priorities
        # grow at a faster rate."
        scheme = BiasedPriority()
        fast = make_vc(interarrival=10.0)
        slow = make_vc(interarrival=1000.0)
        flit = head_flit(created=0)
        assert scheme.priority(fast, flit, 50) > scheme.priority(slow, flit, 50)

    def test_is_delay_over_interarrival(self):
        scheme = BiasedPriority()
        vc = make_vc(interarrival=20.0)
        flit = head_flit(created=40)
        assert scheme.priority(vc, flit, now=50) == pytest.approx(0.5)

    def test_zero_wait_zero_priority(self):
        scheme = BiasedPriority()
        vc = make_vc()
        flit = head_flit(created=7)
        assert scheme.priority(vc, flit, now=7) == pytest.approx(0.0)


class TestFixedPriority:
    def test_no_growth_in_expectation_is_memoryless(self):
        # Fixed draws change per cycle but never trend with waiting time.
        scheme = FixedPriority()
        vc = make_vc()
        flit = head_flit(created=0)
        draws = [scheme.priority(vc, flit, now=t) for t in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        first_half = sum(draws[:100]) / 100
        second_half = sum(draws[100:]) / 100
        assert abs(first_half - second_half) < 0.15  # no aging trend

    def test_deterministic_per_flit_cycle(self):
        scheme = FixedPriority()
        vc = make_vc()
        flit = head_flit()
        assert scheme.priority(vc, flit, 5) == scheme.priority(vc, flit, 5)

    def test_different_flits_differ(self):
        scheme = FixedPriority()
        vc = make_vc()
        a, b = head_flit(), head_flit()
        b.sequence = 1  # flit identity = (connection, sequence)
        assert scheme.priority(vc, a, 5) != scheme.priority(vc, b, 5)

    def test_same_identity_same_draw(self):
        # Priorities are keyed on run-stable fields, not object identity,
        # so identically-constructed simulations reproduce exactly.
        scheme = FixedPriority()
        vc = make_vc()
        a, b = head_flit(), head_flit()
        assert scheme.priority(vc, a, 5) == scheme.priority(vc, b, 5)


class TestFrozenFlitPriority:
    def test_constant_over_time(self):
        scheme = FrozenFlitPriority()
        vc = make_vc()
        flit = head_flit()
        values = {scheme.priority(vc, flit, t) for t in range(10)}
        assert len(values) == 1

    def test_varies_across_flits(self):
        scheme = FrozenFlitPriority()
        vc = make_vc()
        values = set()
        for sequence in range(20):
            flit = head_flit()
            flit.sequence = sequence
            values.add(scheme.priority(vc, flit, 0))
        assert len(values) > 10


class TestStaticAndRate:
    def test_static_uses_connection_priority(self):
        scheme = StaticConnectionPriority()
        hi = make_vc(static=0.9)
        lo = make_vc(static=0.1)
        flit = head_flit()
        assert scheme.priority(hi, flit, 0) > scheme.priority(lo, flit, 0)

    def test_static_never_changes(self):
        scheme = StaticConnectionPriority()
        vc = make_vc(static=0.3)
        flit = head_flit()
        assert scheme.priority(vc, flit, 0) == scheme.priority(vc, flit, 1000)

    def test_rate_priority_prefers_fast_connections(self):
        scheme = RatePriority()
        fast = make_vc(interarrival=10.0)
        slow = make_vc(interarrival=100.0)
        flit = head_flit()
        assert scheme.priority(fast, flit, 0) > scheme.priority(slow, flit, 0)

    def test_age_priority_is_pure_wait(self):
        scheme = AgePriority()
        vc = make_vc(interarrival=123.0)
        flit = head_flit(created=10)
        assert scheme.priority(vc, flit, 25) == pytest.approx(15.0)


class TestClassOrdering:
    def test_control_above_data_above_best_effort(self):
        scheme = BiasedPriority()
        flit = head_flit(created=0)
        control = make_vc(ServiceClass.CONTROL)
        cbr = make_vc(ServiceClass.CBR)
        best_effort = make_vc(ServiceClass.BEST_EFFORT)
        now = 10000  # large waits cannot cross class boundaries
        p_control = scheme.priority(control, flit, now)
        p_cbr = scheme.priority(cbr, flit, now)
        p_be = scheme.priority(best_effort, flit, now)
        assert p_control > p_cbr > p_be

    def test_cbr_and_vbr_share_data_class(self):
        assert CLASS_OFFSETS[ServiceClass.CBR] == CLASS_OFFSETS[ServiceClass.VBR]


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("fixed", FixedPriority),
            ("frozen", FrozenFlitPriority),
            ("biased", BiasedPriority),
            ("age", AgePriority),
            ("rate", RatePriority),
            ("static", StaticConnectionPriority),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_priority_scheme(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown priority scheme"):
            make_priority_scheme("bogus")

    def test_repr(self):
        assert repr(BiasedPriority()) == "BiasedPriority()"
