"""Tests for the pipelined VCM timing model (§3.2 sizing rules)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.vcm import VcmGeometry
from repro.core.vcm_timing import (
    AccessTimeline,
    VcmTimingConfig,
    required_modules,
    schedule_flit_stream,
    sequential_flit_addresses,
)


def geometry(num_vcs=8, flits_per_vc=4, phits_per_flit=8, num_modules=8):
    return VcmGeometry(num_vcs, flits_per_vc, phits_per_flit, num_modules)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            VcmTimingConfig(geometry(), access_phit_times=0.0)
        with pytest.raises(ValueError):
            VcmTimingConfig(geometry(), access_phit_times=1.0, pipeline_depth=0)

    def test_throughput_arithmetic(self):
        config = VcmTimingConfig(geometry(num_modules=4), access_phit_times=2.0)
        assert config.module_throughput == pytest.approx(0.5)
        assert config.array_throughput == pytest.approx(2.0)
        assert config.sustains_link_rate

    def test_pipelining_multiplies_throughput(self):
        slow = VcmTimingConfig(geometry(num_modules=2), access_phit_times=4.0)
        piped = VcmTimingConfig(
            geometry(num_modules=2), access_phit_times=4.0, pipeline_depth=2
        )
        assert not slow.sustains_link_rate
        assert piped.sustains_link_rate


class TestScheduling:
    def test_balanced_array_keeps_up(self):
        # 8 modules, 4-phit-time access: array throughput 2x link rate.
        config = VcmTimingConfig(geometry(), access_phit_times=4.0)
        addresses = sequential_flit_addresses(config.geometry, 32)
        timeline = schedule_flit_stream(config, addresses)
        assert timeline.conflicts == 0
        assert timeline.slowdown <= 1.1  # last access drains shortly after

    def test_underprovisioned_array_conflicts(self):
        # 2 modules, 4-phit-time access: array sustains only 0.5x link.
        config = VcmTimingConfig(geometry(num_modules=2), access_phit_times=4.0)
        addresses = sequential_flit_addresses(config.geometry, 32)
        timeline = schedule_flit_stream(config, addresses)
        assert timeline.conflicts > 0
        assert timeline.slowdown > 1.5

    def test_pipelining_removes_conflicts(self):
        base = VcmTimingConfig(geometry(num_modules=2), access_phit_times=4.0)
        piped = VcmTimingConfig(
            geometry(num_modules=2), access_phit_times=4.0, pipeline_depth=4
        )
        addresses = sequential_flit_addresses(base.geometry, 32)
        assert schedule_flit_stream(base, addresses).conflicts > 0
        assert schedule_flit_stream(piped, addresses).conflicts == 0

    def test_accesses_counted(self):
        config = VcmTimingConfig(geometry(), access_phit_times=1.0)
        addresses = sequential_flit_addresses(config.geometry, 5)
        timeline = schedule_flit_stream(config, addresses)
        assert timeline.accesses == 5 * 8

    def test_empty_stream(self):
        config = VcmTimingConfig(geometry(), access_phit_times=1.0)
        timeline = schedule_flit_stream(config, [])
        assert timeline.accesses == 0
        assert timeline.slowdown == 0.0

    @settings(max_examples=25)
    @given(
        st.integers(1, 4),  # modules (as power fraction of phits)
        st.floats(0.5, 6.0),
        st.integers(1, 3),
    )
    def test_sufficient_arrays_never_slow_down_much(
        self, modules, access, depth
    ):
        """Whenever the closed-form throughput says the array keeps up,
        the cycle-accurate schedule agrees (no unbounded slowdown)."""
        g = geometry(num_modules=modules * 2, phits_per_flit=8)
        config = VcmTimingConfig(g, access_phit_times=access, pipeline_depth=depth)
        addresses = sequential_flit_addresses(g, 24)
        timeline = schedule_flit_stream(config, addresses)
        if config.sustains_link_rate:
            assert timeline.slowdown <= 1.0 + access / timeline.accesses + 0.2


class TestRequiredModules:
    def test_exact_division(self):
        assert required_modules(4.0) == 4
        assert required_modules(4.0, pipeline_depth=2) == 2

    def test_rounds_up(self):
        assert required_modules(4.5) == 5

    def test_fast_memory_needs_one(self):
        assert required_modules(0.5) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            required_modules(0.0)
        with pytest.raises(ValueError):
            required_modules(4.0, pipeline_depth=0)

    def test_sized_array_sustains_link(self):
        for access in (1.0, 2.5, 7.0):
            modules = required_modules(access)
            config = VcmTimingConfig(
                geometry(num_modules=modules), access_phit_times=access
            )
            assert config.sustains_link_rate

    def test_paper_configuration_is_feasible(self):
        """The paper's numbers: 16-bit phits on 1.24 Gbps links arrive
        every ~12.9 ns; 8 modules of typical late-90s embedded SRAM
        (~40 ns access) sustain the link with headroom."""
        phit_time_ns = 16 / 1.24e9 * 1e9
        access_phit_times = 40.0 / phit_time_ns
        assert required_modules(access_phit_times) <= 8
