"""Tests for the network-level experiment harness."""

import pytest

from repro.harness.network_experiment import (
    NetworkExperimentResult,
    NetworkExperimentSpec,
    run_network_experiment,
)
from repro.network.topology import mesh


def quick_spec(**overrides):
    base = dict(
        target_link_load=0.3,
        num_nodes=8,
        warmup_cycles=1000,
        measure_cycles=5000,
        seed=4,
    )
    base.update(overrides)
    return NetworkExperimentSpec(**base)


class TestSpecValidation:
    def test_rejects_bad_load(self):
        with pytest.raises(ValueError):
            quick_spec(target_link_load=0.0)

    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError):
            quick_spec(num_nodes=1)

    def test_rejects_negative_be_rate(self):
        with pytest.raises(ValueError):
            quick_spec(best_effort_rate=-1.0)


class TestRunExperiment:
    def test_produces_streams_and_stats(self):
        result = run_network_experiment(quick_spec())
        assert result.streams > 0
        assert result.acceptance_ratio > 0.5
        assert result.delay_cycles.count > 100
        assert result.mean_hops >= 1.0
        assert result.delay_per_hop >= 1.0

    def test_deterministic(self):
        a = run_network_experiment(quick_spec())
        b = run_network_experiment(quick_spec())
        assert a.streams == b.streams
        assert a.delay_cycles.mean == b.delay_cycles.mean

    def test_delay_grows_with_hops(self):
        result = run_network_experiment(quick_spec(target_link_load=0.4))
        hops = sorted(result.by_hops)
        if len(hops) >= 2:
            first_delay = result.by_hops[hops[0]][0]
            last_delay = result.by_hops[hops[-1]][0]
            assert last_delay > first_delay

    def test_load_increases_delay(self):
        light = run_network_experiment(quick_spec(target_link_load=0.15))
        heavy = run_network_experiment(quick_spec(target_link_load=0.6))
        assert heavy.streams > light.streams
        assert heavy.delay_cycles.mean >= light.delay_cycles.mean

    def test_best_effort_background_delivered(self):
        result = run_network_experiment(
            quick_spec(best_effort_rate=2.0)
        )
        assert result.best_effort_delivered > 0
        # Streams still flow under background chatter.
        assert result.delay_cycles.count > 100

    def test_explicit_topology(self):
        topo = mesh(3, 3)
        result = run_network_experiment(quick_spec(num_nodes=9), topology=topo)
        assert result.streams > 0

    def test_jitter_bounded_at_light_load(self):
        result = run_network_experiment(quick_spec(target_link_load=0.15))
        assert result.jitter_cycles.mean < 1.0
