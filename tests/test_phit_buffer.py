"""Tests for the phit buffers in front of the VCM."""

import pytest

from repro.core.flit import Flit, FlitType, fragment_into_phits
from repro.core.phit_buffer import PhitBuffer


def phits(n=4):
    return fragment_into_phits(Flit(FlitType.DATA), n)


class TestPhitBuffer:
    def test_rejects_nonpositive_depth(self):
        with pytest.raises(ValueError):
            PhitBuffer(0)

    def test_fifo(self):
        buf = PhitBuffer(8)
        items = phits(4)
        for p in items:
            buf.push(p)
        assert [buf.pop() for _ in range(4)] == items

    def test_overflow(self):
        buf = PhitBuffer(2)
        a, b, c, _ = phits(4)
        buf.push(a)
        buf.push(b)
        assert buf.is_full
        with pytest.raises(RuntimeError):
            buf.push(c)

    def test_underflow(self):
        with pytest.raises(RuntimeError):
            PhitBuffer(2).pop()

    def test_peek(self):
        buf = PhitBuffer(4)
        assert buf.peek() is None
        items = phits(2)
        buf.push(items[0])
        assert buf.peek() is items[0]
        assert len(buf) == 1

    def test_high_water_mark(self):
        buf = PhitBuffer(4)
        for p in phits(3):
            buf.push(p)
        buf.pop()
        buf.pop()
        assert buf.max_occupancy == 3

    def test_is_empty(self):
        buf = PhitBuffer(2)
        assert buf.is_empty
        buf.push(phits(1)[0])
        assert not buf.is_empty


class TestRequiredDepth:
    def test_paper_sizing_rule(self):
        # Deep enough to hold all phits arriving during a decode period,
        # plus the one in flight.
        assert PhitBuffer.required_depth(decode_cycles=3) == 4

    def test_zero_decode(self):
        assert PhitBuffer.required_depth(0) == 1

    def test_multiple_phits_per_cycle(self):
        assert PhitBuffer.required_depth(2, phits_per_cycle=4) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            PhitBuffer.required_depth(-1)
        with pytest.raises(ValueError):
            PhitBuffer.required_depth(1, phits_per_cycle=0)

    def test_sized_buffer_never_overflows_during_decode(self):
        decode = 5
        buf = PhitBuffer(PhitBuffer.required_depth(decode))
        stream = phits(8)
        # Worst case: decode+1 phits arrive before the first drain.
        for p in stream[: decode + 1]:
            buf.push(p)
        assert buf.is_full or len(buf) <= buf.depth
