"""Tests for QoS metrics, aggregation and contract verification."""

import pytest

from repro.core.config import RouterConfig
from repro.qos.guarantees import (
    ContractViolation,
    QosContract,
    expected_flits,
    verify_contract,
)
from repro.qos.metrics import (
    UNCLASSIFIED,
    per_rate_breakdown,
    summarise,
    summarise_weighted,
)
from repro.sim.stats import ConnectionStats


def stats_with_delays(delays):
    stats = ConnectionStats()
    for d in delays:
        stats.record_flit(d)
    return stats


class TestSummarise:
    def test_empty(self):
        summary = summarise({})
        assert summary.connections == 0
        assert summary.flits_delivered == 0
        assert summary.mean_delay_cycles == 0.0

    def test_skips_idle_connections(self):
        summary = summarise({1: ConnectionStats(), 2: stats_with_delays([4.0])})
        assert summary.connections == 1
        assert summary.flits_delivered == 1

    def test_per_connection_weighting(self):
        # Connection means are averaged, regardless of flit counts.
        stats = {
            1: stats_with_delays([10.0] * 100),
            2: stats_with_delays([2.0]),
        }
        summary = summarise(stats)
        assert summary.mean_delay_cycles == pytest.approx(6.0)
        assert summary.max_delay_cycles == pytest.approx(10.0)

    def test_flit_weighting(self):
        stats = {
            1: stats_with_delays([10.0] * 99),
            2: stats_with_delays([0.0]),
        }
        summary = summarise_weighted(stats)
        assert summary.mean_delay_cycles == pytest.approx(9.9)

    def test_jitter_aggregation(self):
        stats = {
            1: stats_with_delays([1.0, 3.0]),  # jitter 2
            2: stats_with_delays([5.0, 5.0]),  # jitter 0
        }
        summary = summarise(stats)
        assert summary.mean_jitter_cycles == pytest.approx(1.0)
        assert summary.max_jitter_cycles == pytest.approx(2.0)

    def test_delay_in_microseconds(self):
        config = RouterConfig()
        summary = summarise({1: stats_with_delays([10.0])})
        assert summary.mean_delay_us(config) == pytest.approx(1.032, abs=0.01)
        assert summary.max_delay_us(config) == pytest.approx(1.032, abs=0.01)


class TestPerRateBreakdown:
    def test_groups_by_rate(self):
        stats = {
            1: stats_with_delays([1.0]),
            2: stats_with_delays([3.0]),
            3: stats_with_delays([5.0]),
        }
        rates = {1: 64e3, 2: 64e3, 3: 120e6}
        groups = per_rate_breakdown(stats, rates)
        assert set(groups) == {64e3, 120e6}
        assert groups[64e3].connections == 2
        assert groups[64e3].mean_delay_cycles == pytest.approx(2.0)
        assert groups[120e6].mean_delay_cycles == pytest.approx(5.0)

    def test_unknown_connections_grouped_as_unclassified(self):
        stats = {
            1: stats_with_delays([1.0]),
            2: stats_with_delays([3.0]),
            3: stats_with_delays([7.0]),
        }
        groups = per_rate_breakdown(stats, {1: 64e3})
        assert set(groups) == {64e3, UNCLASSIFIED}
        assert groups[UNCLASSIFIED].connections == 2
        assert groups[UNCLASSIFIED].mean_delay_cycles == pytest.approx(5.0)
        # The classified group is untouched by the unclassified bucket.
        assert groups[64e3].connections == 1

    def test_no_unclassified_entry_when_all_classified(self):
        stats = {1: stats_with_delays([1.0])}
        assert UNCLASSIFIED not in per_rate_breakdown(stats, {1: 64e3})

    def test_strict_raises_naming_missing_ids(self):
        stats = {7: stats_with_delays([1.0]), 3: stats_with_delays([2.0])}
        with pytest.raises(ValueError, match=r"2 connection\(s\).*3, 7"):
            per_rate_breakdown(stats, {}, strict=True)


class TestContracts:
    def config(self):
        return RouterConfig()

    def test_expected_flits(self):
        contract = QosContract(1, rate_bps=1.24e9 / 10)
        assert expected_flits(contract, self.config(), cycles=1000) == pytest.approx(
            100.0
        )

    def test_satisfied_contract_has_no_violations(self):
        contract = QosContract(
            1, rate_bps=1.24e9 / 10, max_mean_delay_cycles=5.0,
            max_mean_jitter_cycles=1.0,
        )
        stats = stats_with_delays([3.0] * 100)
        assert verify_contract(contract, stats, self.config(), cycles=1000) == []

    def test_throughput_violation(self):
        contract = QosContract(1, rate_bps=1.24e9 / 10)
        stats = stats_with_delays([3.0] * 10)  # only 10 of ~100 flits
        violations = verify_contract(contract, stats, self.config(), cycles=1000)
        assert any(v.clause == "throughput_flits" for v in violations)

    def test_delay_violation(self):
        contract = QosContract(
            1, rate_bps=1.24e9 / 10, max_mean_delay_cycles=2.0
        )
        stats = stats_with_delays([30.0] * 100)
        violations = verify_contract(contract, stats, self.config(), cycles=1000)
        assert any(v.clause == "mean_delay_cycles" for v in violations)

    def test_jitter_violation(self):
        contract = QosContract(
            1, rate_bps=1.24e9 / 10, max_mean_jitter_cycles=0.5
        )
        stats = stats_with_delays([1.0, 9.0] * 50)
        violations = verify_contract(contract, stats, self.config(), cycles=1000)
        assert any(v.clause == "mean_jitter_cycles" for v in violations)

    def test_violation_string(self):
        violation = ContractViolation(3, "mean_delay_cycles", 2.0, 5.0)
        text = str(violation)
        assert "connection 3" in text
        assert "mean_delay_cycles" in text

    def test_vbr_flag(self):
        assert QosContract(1, 1e6, peak_rate_bps=2e6).is_vbr
        assert not QosContract(1, 1e6).is_vbr
        assert not QosContract(1, 1e6, peak_rate_bps=1e6).is_vbr
