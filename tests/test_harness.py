"""Tests for the experiment harness, figure regeneration and reporting."""

import pytest

from repro.core.config import RouterConfig
from repro.harness.figures import (
    FigureData,
    clear_cache,
    figure3,
    figure4,
    figure5,
    run_point,
)
from repro.harness.report import ascii_plot, format_series, format_table
from repro.harness.single_router import (
    ExperimentSpec,
    run_single_router_experiment,
)
from repro.harness.sweep import SweepAxis, build_spec, run_sweep

#: A small, fast configuration for harness tests: the full paper config is
#: exercised by the benchmarks.
TINY = RouterConfig(
    num_ports=4, vcs_per_port=32, enforce_round_budgets=False
)
TINY_CYCLES = dict(warmup_cycles=500, measure_cycles=2000)


def tiny_spec(**overrides):
    base = dict(
        target_load=0.5, config=TINY, candidates=4, seed=3, **TINY_CYCLES
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestExperimentSpec:
    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError):
            tiny_spec(scheduler="magic")

    def test_rejects_bad_load(self):
        with pytest.raises(ValueError):
            tiny_spec(target_load=0.0)

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            tiny_spec(warmup_cycles=-1)


class TestRunExperiment:
    def test_produces_statistics(self):
        result = run_single_router_experiment(tiny_spec())
        assert result.connections > 0
        assert result.offered_load == pytest.approx(0.5, abs=0.05)
        assert result.summary.flits_delivered > 0
        assert result.mean_delay_cycles > 0
        assert 0.0 < result.utilisation <= 1.0

    def test_deterministic_for_same_seed(self):
        a = run_single_router_experiment(tiny_spec())
        b = run_single_router_experiment(tiny_spec())
        assert a.mean_delay_cycles == b.mean_delay_cycles
        assert a.mean_jitter_cycles == b.mean_jitter_cycles
        assert a.utilisation == b.utilisation

    def test_seeds_change_workload(self):
        a = run_single_router_experiment(tiny_spec(seed=1))
        b = run_single_router_experiment(tiny_spec(seed=2))
        assert a.mean_delay_cycles != b.mean_delay_cycles

    def test_shared_plan_compares_schedulers_on_same_workload(self):
        from repro.sim.rng import SeededRng
        from repro.traffic.load import LoadPlanner

        plan = LoadPlanner(TINY, SeededRng(3, "shared")).plan(0.5)
        greedy = run_single_router_experiment(tiny_spec(), plan=plan)
        perfect = run_single_router_experiment(
            tiny_spec(scheduler="perfect"), plan=plan
        )
        assert greedy.connections == perfect.connections
        assert perfect.mean_delay_cycles <= greedy.mean_delay_cycles + 1e-9

    def test_per_rate_breakdown_present(self):
        result = run_single_router_experiment(tiny_spec())
        assert result.per_rate
        for rate, summary in result.per_rate.items():
            assert rate > 0
            assert summary.connections >= 1

    @pytest.mark.parametrize("scheduler", ["greedy", "dec", "perfect"])
    def test_all_schedulers_run(self, scheduler):
        result = run_single_router_experiment(tiny_spec(scheduler=scheduler))
        assert result.summary.flits_delivered > 0

    @pytest.mark.parametrize("priority", ["biased", "fixed", "age", "rate", "static"])
    def test_all_priorities_run(self, priority):
        result = run_single_router_experiment(tiny_spec(priority=priority))
        assert result.summary.flits_delivered > 0


class TestFigures:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def run_kwargs(self):
        return dict(loads=(0.3, 0.6), full=False)

    def test_figure3_structure(self):
        data = figure3(loads=(0.3, 0.6), candidates=(2,), seed=5)
        assert isinstance(data, FigureData)
        assert data.xs == [0.3, 0.6]
        assert set(data.series) == {"2C biased", "2C fixed"}
        assert all(len(v) == 2 for v in data.series.values())

    def test_figure4_shares_cache_with_figure3(self):
        figure3(loads=(0.3,), candidates=(2,), seed=5)
        from repro.harness import figures as module

        cached = len(module._cache)
        figure4(loads=(0.3,), candidates=(2,), seed=5)
        assert len(module._cache) == cached  # no new runs

    def test_figure5_structure(self):
        delay, jitter = figure5(loads=(0.4,), seed=5)
        assert set(delay.series) == {"biased", "fixed", "DEC", "perfect"}
        assert set(jitter.series) == {"biased", "fixed", "DEC", "perfect"}

    def test_run_point_caches(self):
        spec = tiny_spec()
        first = run_point(spec)
        second = run_point(spec)
        assert first is second

    def test_table_rendering(self):
        data = figure3(loads=(0.3,), candidates=(2,), seed=5)
        table = data.table()
        assert "Figure 3" in table
        assert "2C biased" in table


class TestSweep:
    def test_axis_validation(self):
        with pytest.raises(ValueError):
            SweepAxis("x", ())
        with pytest.raises(ValueError):
            SweepAxis("x", (1,), target="bogus")

    def test_build_spec_targets(self):
        base = tiny_spec()
        spec = build_spec(
            base,
            {
                "candidates": ("spec", 2),
                "round_factor": ("config", 4),
            },
        )
        assert spec.candidates == 2
        assert spec.config.round_factor == 4
        assert base.candidates == 4  # untouched

    def test_run_sweep_grid(self):
        sweep = run_sweep(
            tiny_spec(),
            [
                SweepAxis("candidates", (1, 2)),
                SweepAxis("target_load", (0.3, 0.5)),
            ],
        )
        assert len(sweep.results) == 4
        delays = sweep.column("mean_delay_cycles")
        assert set(delays) == {(1, 0.3), (1, 0.5), (2, 0.3), (2, 0.5)}
        rows = sweep.rows(["mean_delay_cycles", "utilisation"])
        assert len(rows) == 4
        assert len(rows[0]) == 4

    def test_rows_numeric_order_across_digit_boundary(self):
        # A 2-axis numeric grid spanning 9 -> 10: string ordering would
        # put (10, ...) before (9, ...).
        from itertools import product

        from repro.harness.sweep import SweepResult

        class FakeResult:
            def __init__(self, value):
                self.metric = value

        axes = (SweepAxis("candidates", (9, 10, 2)), SweepAxis("seed", (10, 9)))
        sweep = SweepResult(axes)
        for key in product((9, 10, 2), (10, 9)):
            sweep.results[key] = FakeResult(sum(key))
        rows = sweep.rows(["metric"])
        assert [row[:2] for row in rows] == [
            [2, 9], [2, 10], [9, 9], [9, 10], [10, 9], [10, 10],
        ]
        assert all(row[2] == row[0] + row[1] for row in rows)

    def test_rows_mixed_type_axes_do_not_raise(self):
        from repro.harness.sweep import SweepResult

        class FakeResult:
            metric = 0.0

        axes = (SweepAxis("scheduler", ("greedy", 2, True, "batch")),)
        sweep = SweepResult(axes)
        for key in (("greedy",), (2,), (True,), ("batch",)):
            sweep.results[key] = FakeResult()
        ordered = [row[0] for row in sweep.rows(["metric"])]
        # Numbers first (numeric order), then flags, then text.
        assert ordered == [2, True, "batch", "greedy"]


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.34567], [10, 0.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "2.346" in table
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_format_series(self):
        text = format_series("T", "x", [1.0, 2.0], {"y": [3.0, 4.0]})
        assert text.startswith("T\n")
        assert "4.000" in text

    def test_ascii_plot_contains_markers(self):
        plot = ascii_plot([0, 1, 2], {"up": [1, 2, 3], "down": [3, 2, 1]})
        assert "o=up" in plot
        assert "x=down" in plot

    def test_ascii_plot_log_scale(self):
        plot = ascii_plot([0, 1], {"s": [1, 1000]}, logy=True)
        assert "log10" in plot

    def test_ascii_plot_empty(self):
        assert ascii_plot([], {}) == "(no data)"


class TestDelayHistogram:
    def test_disabled_by_default(self):
        result = run_single_router_experiment(tiny_spec())
        assert result.delay_percentiles is None

    def test_percentiles_when_enabled(self):
        result = run_single_router_experiment(
            tiny_spec(delay_histogram_bins=512)
        )
        p50, p99 = result.delay_percentiles
        assert 1.0 <= p50 <= p99
        # The median sits near the mean for these light-tailed delays.
        assert p50 == pytest.approx(result.mean_delay_cycles, abs=3.0)

    def test_p99_dominates_mean(self):
        result = run_single_router_experiment(
            tiny_spec(target_load=0.55, delay_histogram_bins=512)
        )
        _, p99 = result.delay_percentiles
        assert p99 >= result.mean_delay_cycles
