"""Tests for the switch schedulers: greedy, DEC (PIM) and perfect."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.link_scheduler import Candidate
from repro.core.switch_scheduler import (
    DecScheduler,
    Grant,
    GreedyPriorityScheduler,
    PerfectSwitchScheduler,
    validate_grants,
)
from repro.sim.rng import SeededRng

NUM_PORTS = 4


def candidate_lists(entries):
    """entries: list of (priority, input, vc, output)."""
    lists = [[] for _ in range(NUM_PORTS)]
    for priority, input_port, vc, output in entries:
        lists[input_port].append(Candidate(priority, input_port, vc, output))
    for lst in lists:
        lst.sort(key=Candidate.sort_key)
    return lists


# Strategy: a random candidate landscape over NUM_PORTS ports.
random_candidates = st.lists(
    st.tuples(
        st.floats(0, 100, allow_nan=False),
        st.integers(0, NUM_PORTS - 1),
        st.integers(0, 15),
        st.integers(0, NUM_PORTS - 1),
    ),
    max_size=30,
)


class TestGreedy:
    def test_no_candidates_no_grants(self):
        assert GreedyPriorityScheduler().schedule([[] for _ in range(4)], 0) == []

    def test_highest_priority_wins_conflict(self):
        lists = candidate_lists([
            (5.0, 0, 1, 2),
            (9.0, 1, 7, 2),  # same output, higher priority
        ])
        grants = GreedyPriorityScheduler().schedule(lists, 0)
        winners = {(g.input_port, g.vc_index) for g in grants}
        assert (1, 7) in winners
        assert (0, 1) not in winners

    def test_loser_can_use_other_output(self):
        lists = candidate_lists([
            (9.0, 1, 7, 2),
            (5.0, 0, 1, 2),
            (1.0, 0, 3, 3),  # port 0's fallback to a free output
        ])
        grants = GreedyPriorityScheduler().schedule(lists, 0)
        assert Grant(1, 7, 2) in grants
        assert Grant(0, 3, 3) in grants

    def test_matching_is_maximal(self):
        # Whenever an input has a candidate to a free output, it is used.
        lists = candidate_lists([
            (9.0, 0, 0, 0),
            (8.0, 1, 0, 1),
            (7.0, 2, 0, 2),
            (6.0, 3, 0, 3),
        ])
        grants = GreedyPriorityScheduler().schedule(lists, 0)
        assert len(grants) == 4

    def test_deterministic_tie_break(self):
        lists = candidate_lists([
            (5.0, 0, 3, 1),
            (5.0, 1, 3, 1),
        ])
        grants = GreedyPriorityScheduler().schedule(lists, 0)
        assert grants == [Grant(0, 3, 1)]

    @given(random_candidates)
    def test_grants_always_valid(self, entries):
        grants = GreedyPriorityScheduler().schedule(candidate_lists(entries), 0)
        validate_grants(grants, NUM_PORTS, output_concurrency=1)

    @given(random_candidates)
    def test_maximality_property(self, entries):
        """After greedy matching, no (input, output) pair with an offered
        candidate is left with both sides free."""
        lists = candidate_lists(entries)
        grants = GreedyPriorityScheduler().schedule(lists, 0)
        used_inputs = {g.input_port for g in grants}
        used_outputs = {g.output_port for g in grants}
        for lst in lists:
            for candidate in lst:
                free_both = (
                    candidate.input_port not in used_inputs
                    and candidate.output_port not in used_outputs
                )
                assert not free_both


class TestDec:
    def make(self, iterations=4):
        return DecScheduler(SeededRng(3, "dec"), iterations=iterations)

    def test_iterations_validated(self):
        with pytest.raises(ValueError):
            DecScheduler(SeededRng(1, "x"), iterations=0)

    def test_single_candidate_granted(self):
        lists = candidate_lists([(1.0, 0, 2, 3)])
        assert self.make().schedule(lists, 0) == [Grant(0, 2, 3)]

    def test_conflicting_requests_one_winner(self):
        lists = candidate_lists([
            (1.0, 0, 1, 2),
            (1.0, 1, 1, 2),
        ])
        grants = self.make().schedule(lists, 0)
        assert len(grants) == 1
        assert grants[0].output_port == 2

    def test_iterations_improve_matching(self):
        # Input 0 can reach outputs {0,1}, input 1 only output 0.  A
        # one-shot random match may strand input 1; iteration recovers it.
        lists = candidate_lists([
            (1.0, 0, 0, 0),
            (1.0, 0, 1, 1),
            (1.0, 1, 0, 0),
        ])
        sizes = set()
        for seed in range(30):
            scheduler = DecScheduler(SeededRng(seed, "it"), iterations=4)
            sizes.add(len(scheduler.schedule(lists, 0)))
        assert 2 in sizes  # the full matching is regularly found

    @given(random_candidates, st.integers(0, 100))
    @settings(max_examples=60)
    def test_grants_always_valid(self, entries, seed):
        scheduler = DecScheduler(SeededRng(seed, "prop"))
        grants = scheduler.schedule(candidate_lists(entries), 0)
        validate_grants(grants, NUM_PORTS, output_concurrency=1)

    def test_reproducible_with_seed(self):
        lists = candidate_lists([
            (1.0, 0, 1, 2),
            (1.0, 1, 4, 2),
            (1.0, 2, 5, 1),
        ])
        a = DecScheduler(SeededRng(9, "same")).schedule(lists, 0)
        b = DecScheduler(SeededRng(9, "same")).schedule(lists, 0)
        assert a == b


class TestPerfect:
    def test_validation(self):
        with pytest.raises(ValueError):
            PerfectSwitchScheduler(0)

    def test_every_input_transmits_best(self):
        lists = candidate_lists([
            (9.0, 0, 1, 2),
            (8.0, 1, 4, 2),
            (7.0, 2, 6, 2),
        ])
        grants = PerfectSwitchScheduler(NUM_PORTS).schedule(lists, 0)
        assert len(grants) == 3
        assert all(g.output_port == 2 for g in grants)

    def test_one_flit_per_input(self):
        lists = candidate_lists([
            (9.0, 0, 1, 2),
            (5.0, 0, 3, 1),
        ])
        grants = PerfectSwitchScheduler(NUM_PORTS).schedule(lists, 0)
        assert grants == [Grant(0, 1, 2)]

    @given(random_candidates)
    def test_grants_valid_with_full_concurrency(self, entries):
        scheduler = PerfectSwitchScheduler(NUM_PORTS)
        grants = scheduler.schedule(candidate_lists(entries), 0)
        validate_grants(grants, NUM_PORTS, output_concurrency=NUM_PORTS)


class TestValidateGrants:
    def test_detects_duplicate_input(self):
        with pytest.raises(ValueError, match="granted twice"):
            validate_grants([Grant(0, 1, 1), Grant(0, 2, 2)], 4)

    def test_detects_output_overcommit(self):
        with pytest.raises(ValueError, match="over-committed"):
            validate_grants([Grant(0, 1, 1), Grant(1, 2, 1)], 4)

    def test_concurrency_allows_sharing(self):
        validate_grants(
            [Grant(0, 1, 1), Grant(1, 2, 1)], 4, output_concurrency=2
        )

    def test_detects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            validate_grants([Grant(5, 0, 0)], 4)
        with pytest.raises(ValueError, match="out of range"):
            validate_grants([Grant(0, 0, 5)], 4)
