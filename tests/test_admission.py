"""Tests for router-level admission control."""

import pytest

from repro.core.admission import AdmissionController
from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig


def controller(num_ports=4, round_factor=1, vcs=8):
    config = RouterConfig(
        num_ports=num_ports, vcs_per_port=vcs, round_factor=round_factor
    )
    return AdmissionController(config), config


class TestAdmission:
    def test_admit_charges_both_links(self):
        ctrl, config = controller()
        request = BandwidthRequest(4)
        assert ctrl.admit(0, 2, request)
        assert ctrl.inputs[0].allocated_cycles == 4
        assert ctrl.outputs[2].allocated_cycles == 4
        assert ctrl.inputs[2].allocated_cycles == 0
        assert ctrl.admitted == 1

    def test_refusal_on_missing_vc(self):
        ctrl, _ = controller()
        decision = ctrl.admit(0, 1, BandwidthRequest(1), input_vc_free=False)
        assert not decision
        assert "virtual channel" in decision.reason
        assert ctrl.refused == 1
        assert ctrl.inputs[0].allocated_cycles == 0

    def test_refusal_on_input_exhaustion(self):
        ctrl, config = controller()
        cap = config.round_length
        assert ctrl.admit(0, 1, BandwidthRequest(cap))
        decision = ctrl.admit(0, 2, BandwidthRequest(1))
        assert not decision
        assert "input link" in decision.reason
        # Output 2 must not have been charged.
        assert ctrl.outputs[2].allocated_cycles == 0

    def test_refusal_on_output_exhaustion(self):
        ctrl, config = controller()
        cap = config.round_length
        assert ctrl.admit(0, 3, BandwidthRequest(cap))
        decision = ctrl.admit(1, 3, BandwidthRequest(1))
        assert not decision
        assert "output link" in decision.reason
        # Input 1 reservation must have been rolled back.
        assert ctrl.inputs[1].allocated_cycles == 0

    def test_release_restores_both(self):
        ctrl, _ = controller()
        request = BandwidthRequest(5)
        ctrl.admit(1, 2, request)
        ctrl.release(1, 2, request)
        assert ctrl.inputs[1].allocated_cycles == 0
        assert ctrl.outputs[2].allocated_cycles == 0

    def test_evaluate_does_not_commit(self):
        ctrl, _ = controller()
        assert ctrl.evaluate(0, 1, BandwidthRequest(3))
        assert ctrl.inputs[0].allocated_cycles == 0
        assert ctrl.outputs[1].allocated_cycles == 0

    def test_port_range_checked(self):
        ctrl, _ = controller()
        with pytest.raises(IndexError):
            ctrl.admit(4, 0, BandwidthRequest(1))
        with pytest.raises(IndexError):
            ctrl.admit(0, -1, BandwidthRequest(1))

    def test_offered_load(self):
        ctrl, config = controller()
        half = config.round_length // 2
        ctrl.admit(0, 0, BandwidthRequest(half))
        ctrl.admit(1, 1, BandwidthRequest(half))
        # Two half-full outputs of four => 25% of switch bandwidth.
        assert ctrl.offered_load() == pytest.approx(0.25)

    def test_loopback_port_double_charged(self):
        # A connection entering and leaving on the same physical link
        # charges that link's input and output registers independently.
        ctrl, _ = controller()
        ctrl.admit(2, 2, BandwidthRequest(3))
        assert ctrl.inputs[2].allocated_cycles == 3
        assert ctrl.outputs[2].allocated_cycles == 3
