"""Tests for the multiprocess sweep harness: row identity across job
counts, manifest merging, and worker-crash reporting."""

from dataclasses import dataclass, field
from typing import Optional

import pytest

from repro.core.config import RouterConfig
from repro.harness.single_router import ExperimentSpec
from repro.harness.sweep import SweepAxis, SweepPointError, run_sweep

TINY = RouterConfig(num_ports=4, vcs_per_port=32, enforce_round_budgets=False)

METRICS = ("mean_delay_cycles", "mean_jitter_cycles", "utilisation")


def tiny_spec(**overrides):
    base = dict(
        target_load=0.4,
        config=TINY,
        candidates=4,
        seed=3,
        warmup_cycles=300,
        measure_cycles=1500,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


@dataclass
class _FakeResult:
    """Minimal picklable stand-in for ExperimentResult in crash tests."""

    seed: int
    recorder: Optional[object] = field(default=None)


def _crashing_runner(spec):
    """Module-level (hence picklable) runner that fails one grid point."""
    if spec.seed == 5 and spec.target_load == 0.4:
        raise ValueError("boom")
    return _FakeResult(seed=spec.seed)


class TestParallelSweep:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_sweep(tiny_spec(), [SweepAxis("seed", (1,))], jobs=0)

    def test_parallel_rows_identical_to_serial(self):
        axes = [
            SweepAxis("seed", (3, 4)),
            SweepAxis("target_load", (0.3, 0.5)),
        ]
        serial = run_sweep(tiny_spec(), axes, jobs=1)
        parallel = run_sweep(tiny_spec(), axes, jobs=2)
        assert serial.rows(METRICS) == parallel.rows(METRICS)
        assert set(serial.results) == set(parallel.results)

    def test_manifests_merged_across_workers(self):
        axes = [SweepAxis("seed", (3, 4))]
        serial = run_sweep(tiny_spec(telemetry=True), axes, jobs=1)
        parallel = run_sweep(tiny_spec(telemetry=True), axes, jobs=2)
        assert set(parallel.manifests) == {(3,), (4,)}
        assert set(serial.manifests) == set(parallel.manifests)
        for manifest in parallel.manifests.values():
            # Workers ship the JSON-safe manifest, never the recorder.
            assert isinstance(manifest, dict) and manifest
        for key in parallel.results:
            assert parallel.results[key].recorder is None

    def test_no_manifests_without_telemetry(self):
        sweep = run_sweep(tiny_spec(), [SweepAxis("seed", (3, 4))], jobs=2)
        assert sweep.manifests == {}

    def test_worker_crash_names_failing_point(self):
        axes = [
            SweepAxis("seed", (4, 5)),
            SweepAxis("target_load", (0.4, 0.6)),
        ]
        with pytest.raises(SweepPointError, match=r"seed=5, target_load=0\.4"):
            run_sweep(tiny_spec(), axes, jobs=2, _runner=_crashing_runner)

    def test_serial_crash_names_failing_point(self):
        axes = [
            SweepAxis("seed", (4, 5)),
            SweepAxis("target_load", (0.4, 0.6)),
        ]
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(tiny_spec(), axes, jobs=1, _runner=_crashing_runner)
        assert excinfo.value.point == "seed=5, target_load=0.4"
        # The cause travels as plain data (picklability), not a live chain.
        assert "ValueError" in excinfo.value.cause_repr
        assert "boom" in excinfo.value.cause_repr

    def test_serial_crash_attaches_completed_rows(self):
        # Serial order is the cartesian product: (4,0.4), (4,0.6) finish
        # before (5,0.4) fails — both must survive on the error.
        axes = [
            SweepAxis("seed", (4, 5)),
            SweepAxis("target_load", (0.4, 0.6)),
        ]
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(tiny_spec(), axes, jobs=1, _runner=_crashing_runner)
        completed = excinfo.value.completed
        assert completed is not None
        assert set(completed.results) == {(4, 0.4), (4, 0.6)}
        assert completed.results[(4, 0.4)].seed == 4

    def test_parallel_crash_attaches_completed_rows(self):
        axes = [
            SweepAxis("seed", (4, 5)),
            SweepAxis("target_load", (0.4, 0.6)),
        ]
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(tiny_spec(), axes, jobs=2, _runner=_crashing_runner)
        completed = excinfo.value.completed
        assert completed is not None
        # Which non-failing points finished before the failure was
        # noticed is timing-dependent, but every attached row must be a
        # real success and the failing point must never be among them.
        assert (5, 0.4) not in completed.results
        for key, result in completed.results.items():
            assert result.seed == key[0]

    def test_crash_error_stays_picklable_with_completed_rows(self):
        axes = [
            SweepAxis("seed", (4, 5)),
            SweepAxis("target_load", (0.4, 0.6)),
        ]
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(tiny_spec(), axes, jobs=2, _runner=_crashing_runner)
        # The cross-process contract is unchanged: completed rows are a
        # live attribute, not part of the pickled reduction.
        assert excinfo.value.__reduce__() == (
            SweepPointError,
            ("seed=5, target_load=0.4", "ValueError('boom')"),
        )
