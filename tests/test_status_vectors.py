"""Tests for status bit vectors and the per-link status bank."""

import pytest
from hypothesis import given, strategies as st

from repro.core.status_vectors import BitVector, StatusBank

index_sets = st.sets(st.integers(0, 63), max_size=20)


def vector_from(indices, width=64):
    v = BitVector(width)
    for i in indices:
        v.set(i)
    return v


class TestBitVector:
    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            BitVector(0)

    def test_rejects_bits_exceeding_width(self):
        with pytest.raises(ValueError):
            BitVector(4, bits=0x10)

    def test_set_test_clear(self):
        v = BitVector(8)
        assert not v.test(3)
        v.set(3)
        assert v.test(3)
        v.clear(3)
        assert not v.test(3)

    def test_assign(self):
        v = BitVector(8)
        v.assign(2, True)
        assert v.test(2)
        v.assign(2, False)
        assert not v.test(2)

    def test_out_of_range(self):
        v = BitVector(8)
        with pytest.raises(IndexError):
            v.set(8)
        with pytest.raises(IndexError):
            v.test(-1)

    def test_set_all_clear_all(self):
        v = BitVector(5)
        v.set_all()
        assert v.count() == 5
        v.clear_all()
        assert v.count() == 0

    def test_first_set(self):
        v = BitVector(16)
        assert v.first_set() == -1
        v.set(9)
        v.set(4)
        assert v.first_set() == 4

    @given(index_sets)
    def test_indices_match_set_semantics(self, indices):
        v = vector_from(indices)
        assert list(v.indices()) == sorted(indices)
        assert v.count() == len(indices)
        assert v.any() == bool(indices)

    @given(
        st.integers(1, 300).flatmap(
            lambda width: st.tuples(
                st.just(width), st.sets(st.integers(0, width - 1))
            )
        )
    )
    def test_indices_match_naive_scan(self, width_and_indices):
        # The lowest-set-bit walk (bits & -bits) must agree with the
        # naive test-every-position scan on arbitrary widths, including
        # widths that are not multiples of the word size.
        width, indices = width_and_indices
        v = vector_from(indices, width=width)
        naive = [i for i in range(v.width) if v.as_int() >> i & 1]
        assert list(v.indices()) == naive

    @given(index_sets, index_sets)
    def test_and_is_intersection(self, a, b):
        result = vector_from(a) & vector_from(b)
        assert set(result.indices()) == a & b

    @given(index_sets, index_sets)
    def test_or_is_union(self, a, b):
        result = vector_from(a) | vector_from(b)
        assert set(result.indices()) == a | b

    @given(index_sets, index_sets)
    def test_xor_is_symmetric_difference(self, a, b):
        result = vector_from(a) ^ vector_from(b)
        assert set(result.indices()) == a ^ b

    @given(index_sets)
    def test_invert_is_complement(self, a):
        result = ~vector_from(a)
        assert set(result.indices()) == set(range(64)) - a

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitVector(4) & BitVector(8)

    def test_equality_and_hash(self):
        a = vector_from({1, 2}, width=8)
        b = vector_from({1, 2}, width=8)
        c = vector_from({1, 3}, width=8)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a vector"

    def test_as_int(self):
        assert vector_from({0, 2}, width=8).as_int() == 0b101

    def test_repr(self):
        assert "width=8" in repr(BitVector(8))


class TestStatusBank:
    def test_standard_vectors_exist(self):
        bank = StatusBank(16)
        for name in StatusBank.STANDARD_VECTORS:
            assert bank.vector(name).width == 16

    def test_credits_start_available(self):
        bank = StatusBank(8)
        assert bank.vector("credits_available").count() == 8

    def test_registered_custom_vector(self):
        bank = StatusBank(8)
        v = bank.register("custom_condition")
        assert v.count() == 0
        v.set(1)
        assert bank.vector("custom_condition").test(1)
        # Re-registering returns the same vector, state intact.
        assert bank.register("custom_condition") is v

    def test_unregistered_name_raises(self):
        # A typo ("flit_available" for "flits_available") used to yield a
        # fresh all-zero vector, making the condition silently
        # unsatisfiable; it must be a loud error instead.
        bank = StatusBank(8)
        with pytest.raises(KeyError, match="flit_available"):
            bank.vector("flit_available")

    def test_names_sorted(self):
        bank = StatusBank(8)
        bank.register("zzz")
        names = bank.names()
        assert names == sorted(names)
        assert "zzz" in names

    def test_eligible_for_service_is_and(self):
        bank = StatusBank(8)
        bank.vector("flits_available").set(2)
        bank.vector("flits_available").set(5)
        bank.vector("credits_available").clear(5)
        assert set(bank.eligible_for_service().indices()) == {2}

    @given(index_sets, index_sets, index_sets, index_sets)
    def test_schedulable_is_fused_and(self, flits, credits, routed, exhausted):
        # The fast-path mask: flits & credits & routed & ~exhausted, as
        # one wide boolean expression over all four vectors.
        bank = StatusBank(64)
        bank.vector("credits_available").clear_all()
        for name, indices in (
            ("flits_available", flits),
            ("credits_available", credits),
            ("routed", routed),
            ("round_budget_exhausted", exhausted),
        ):
            vector = bank.vector(name)
            for i in indices:
                vector.set(i)
        expected = (flits & credits & routed) - exhausted
        assert set(bank.schedulable().indices()) == expected

    def test_cbr_candidates_combination(self):
        # The paper's worked example: flits & credits & requested & ~serviced.
        bank = StatusBank(8)
        flits = bank.vector("flits_available")
        requested = bank.vector("cbr_service_requested")
        serviced = bank.vector("cbr_bandwidth_serviced")
        for i in (1, 2, 3):
            flits.set(i)
            requested.set(i)
        serviced.set(2)
        bank.vector("credits_available").clear(3)
        assert set(bank.cbr_candidates().indices()) == {1}
