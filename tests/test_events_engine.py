"""Tests for the event queue and the hybrid simulation engine."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        order = []
        q.push(5, lambda: order.append(5))
        q.push(1, lambda: order.append(1))
        q.push(3, lambda: order.append(3))
        while q:
            q.pop().fire()
        assert order == [1, 3, 5]

    def test_fifo_among_equal_times(self):
        q = EventQueue()
        order = []
        for i in range(5):
            q.push(7, lambda i=i: order.append(i))
        while q:
            q.pop().fire()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        q = EventQueue()
        order = []
        q.push(7, lambda: order.append("low"), priority=1)
        q.push(7, lambda: order.append("high"), priority=0)
        while q:
            q.pop().fire()
        assert order == ["high", "low"]

    def test_cancellation(self):
        q = EventQueue()
        fired = []
        event = q.push(1, lambda: fired.append(1))
        q.cancel(event)
        assert len(q) == 0
        assert not q
        assert q.peek_time() is None

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        e = q.push(1, lambda: None)
        q.push(2, lambda: None)
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        e = q.push(1, lambda: None)
        q.push(9, lambda: None)
        q.cancel(e)
        assert q.peek_time() == 9

    def test_payload_passed(self):
        q = EventQueue()
        got = []
        q.push(1, got.append, payload="hello")
        q.pop().fire()
        assert got == ["hello"]

    def test_event_repr(self):
        e = Event(3, lambda: None)
        assert "t=3" in repr(e)
        e.cancel()
        assert "cancelled" in repr(e)


class TestSimulator:
    def test_tickers_run_every_cycle(self):
        sim = Simulator()
        seen = []
        sim.add_ticker(seen.append)
        sim.run(5)
        assert seen == [0, 1, 2, 3, 4]
        assert sim.now == 5

    def test_tickers_run_in_registration_order(self):
        sim = Simulator()
        order = []
        sim.add_ticker(lambda c: order.append("a"))
        sim.add_ticker(lambda c: order.append("b"))
        sim.run(1)
        assert order == ["a", "b"]

    def test_events_fire_before_tickers(self):
        sim = Simulator()
        order = []
        sim.add_ticker(lambda c: order.append(("tick", c)))
        sim.schedule(2, lambda: order.append(("event", 2)))
        sim.run(3)
        assert ("event", 2) in order
        assert order.index(("event", 2)) < order.index(("tick", 2))

    def test_schedule_at(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(4, lambda: fired.append(sim.now))
        sim.run(6)
        assert fired == [4]

    def test_schedule_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.run(5)
        with pytest.raises(ValueError):
            sim.schedule_at(3, lambda: None)

    def test_stop_ends_run_early(self):
        sim = Simulator()
        sim.schedule(2, sim.stop)
        executed = sim.run(100)
        assert executed == 3  # cycles 0, 1, 2 complete
        assert sim.now == 3

    def test_run_until(self):
        sim = Simulator()
        sim.run_until(7)
        assert sim.now == 7
        with pytest.raises(ValueError):
            sim.run_until(3)

    def test_run_negative_rejected(self):
        with pytest.raises(ValueError):
            Simulator().run(-1)

    def test_event_scheduled_during_cycle_fires_same_cycle_if_due(self):
        # An event scheduled with delay 0 from within an event fires in
        # the same drain loop.
        sim = Simulator()
        order = []
        def outer():
            order.append("outer")
            sim.schedule(0, lambda: order.append("inner"))
        sim.schedule(1, outer)
        sim.run(2)
        assert order == ["outer", "inner"]

    def test_cascading_events_across_cycles(self):
        sim = Simulator()
        hits = []
        def ping():
            hits.append(sim.now)
            if sim.now < 4:
                sim.schedule(2, ping)
        sim.schedule(0, ping)
        sim.run(10)
        assert hits == [0, 2, 4]
