"""Tests for the session-churn workload harness."""

import pytest

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.harness.churn import ChurnSpec, ChurnWorkload, run_churn_experiment
from repro.harness.single_router import SimulatedWorkerCrash
from repro.harness.sweep import SweepAxis, run_sweep
from repro.network.network import Network
from repro.network.policing import TokenBucket
from repro.network.probe_protocol import ProbeProtocol
from repro.network.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.traffic.cbr import CbrSource


def small_spec(**overrides):
    """A churn point small enough for unit tests (~1-2 s)."""
    base = dict(
        num_sessions=80,
        mean_interarrival_cycles=200.0,
        mean_holding_cycles=4000.0,
        drain_cycles=30_000,
        num_nodes=8,
        seed=3,
    )
    base.update(overrides)
    return ChurnSpec(**base)


class TestChurnSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnSpec(num_sessions=0)
        with pytest.raises(ValueError):
            ChurnSpec(mean_interarrival_cycles=0.0)
        with pytest.raises(ValueError):
            ChurnSpec(vbr_fraction=1.5)
        with pytest.raises(ValueError):
            ChurnSpec(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            ChurnSpec(num_nodes=1)

    def test_horizon_covers_arrivals_and_drain(self):
        spec = small_spec()
        assert spec.max_cycles > spec.num_sessions * spec.mean_interarrival_cycles
        assert spec.max_cycles > spec.drain_cycles


class TestChurnRun:
    def test_end_to_end_drains_leak_free(self):
        result = run_churn_experiment(small_spec())
        assert result.drained
        assert result.leak_free, result.leak_report
        assert result.arrivals == 80
        assert result.established + result.blocked == result.arrivals
        assert result.torn_down == result.established
        assert result.established > 0
        assert result.flits_delivered > 0
        assert result.qos.mean_delay_cycles > 0
        # Every delivered flit belonged to a session the rate table knew.
        assert result.unclassified_connections == 0
        assert 0.0 < result.setup_p50 <= result.setup_p99
        assert 0.0 <= result.blocking_probability < 1.0

    def test_deterministic_for_same_seed(self):
        a = run_churn_experiment(small_spec())
        b = run_churn_experiment(small_spec())
        assert a.established == b.established
        assert a.setup_p50 == b.setup_p50
        assert a.flits_delivered == b.flits_delivered
        assert a.qos.mean_delay_cycles == b.qos.mean_delay_cycles

    def test_seed_changes_workload(self):
        a = run_churn_experiment(small_spec(seed=3))
        b = run_churn_experiment(small_spec(seed=4))
        assert a.flits_delivered != b.flits_delivered

    def test_blocking_under_overload_stays_leak_free(self):
        # A small, VC-starved network with sessions arriving much faster
        # than they leave: establishment attempts must be NACKed back out
        # of the network, and every NACK must leave no residue.
        result = run_churn_experiment(
            small_spec(
                num_sessions=60,
                mean_interarrival_cycles=30.0,
                mean_holding_cycles=20_000.0,
                num_nodes=4,
                vcs_per_port=4,
                vbr_fraction=0.0,
            )
        )
        assert result.blocked > 0
        assert result.blocking_probability > 0.0
        assert result.drained
        assert result.leak_free, result.leak_report
        assert result.backtracks > 0 or result.blocked > 0

    def test_renegotiations_happen_and_balance(self):
        result = run_churn_experiment(
            small_spec(vbr_fraction=1.0, renegotiation_fraction=1.0)
        )
        assert result.renegotiations_applied > 0
        assert result.drained
        assert result.leak_free, result.leak_report

    def test_diurnal_modulation_changes_arrival_spacing(self):
        flat = run_churn_experiment(small_spec())
        wavy = run_churn_experiment(
            small_spec(diurnal_amplitude=0.8, diurnal_period_cycles=4000.0)
        )
        assert wavy.drained and wavy.leak_free
        assert wavy.flits_delivered != flat.flits_delivered

    def test_unpoliced_run_also_balances(self):
        result = run_churn_experiment(small_spec(police=False))
        assert result.drained
        assert result.leak_free, result.leak_report


class TestChurnTelemetry:
    def test_channels_recorded(self):
        result = run_churn_experiment(small_spec(telemetry=True))
        assert result.recorder is not None
        names = set(result.recorder.telemetry.names())
        assert "churn.active_sessions" in names
        assert "churn.blocking_rate" in names
        assert "churn.setup_latency_last" in names

    def test_disabled_by_default(self):
        assert run_churn_experiment(small_spec()).recorder is None


class TestChurnSweep:
    def test_parallel_rows_match_serial(self):
        axes = [
            SweepAxis("mean_interarrival_cycles", (150.0, 300.0)),
            SweepAxis("vbr_fraction", (0.0, 0.5)),
        ]
        spec = small_spec(num_sessions=40)
        serial = run_sweep(spec, axes, _runner=run_churn_experiment)
        parallel = run_sweep(spec, axes, jobs=2, _runner=run_churn_experiment)
        columns = ["blocking_probability", "setup_p50", "mean_delay_cycles"]
        assert serial.rows(columns) == parallel.rows(columns)
        assert len(serial.results) == 4


class TestChurnCheckpoint:
    def test_crash_and_resume_matches_straight_run(self, tmp_path):
        spec = small_spec(num_sessions=40)
        path = tmp_path / "churn.ckpt"
        straight = run_churn_experiment(spec)
        with pytest.raises(SimulatedWorkerCrash):
            run_churn_experiment(
                spec,
                checkpoint_every=4000,
                checkpoint_path=path,
                _crash_at_cycle=8000,
            )
        assert path.exists()
        resumed = run_churn_experiment(
            spec, checkpoint_every=4000, checkpoint_path=path, resume=True
        )
        assert resumed.checkpoint["resumed_from_cycle"] is not None
        assert resumed.established == straight.established
        assert resumed.blocked == straight.blocked
        assert resumed.flits_delivered == straight.flits_delivered
        assert resumed.setup_p50 == straight.setup_p50
        assert resumed.qos.mean_delay_cycles == straight.qos.mean_delay_cycles
        assert resumed.leak_free, resumed.leak_report

    def test_checkpoint_requires_path(self):
        with pytest.raises(ValueError):
            run_churn_experiment(small_spec(), checkpoint_every=1000)

    def test_workload_snapshot_roundtrip(self, tmp_path):
        spec = small_spec(num_sessions=30)
        workload = ChurnWorkload(spec)
        workload.run_to(5000)
        path = tmp_path / "mid.ckpt"
        workload.checkpoint(path)
        restored = ChurnWorkload.resume(path, expect_spec=spec)
        assert restored.now == workload.now
        assert restored.arrivals_launched == workload.arrivals_launched
        a = workload.result()
        b = restored.result()
        assert a.flits_delivered == b.flits_delivered
        assert a.leak_free and b.leak_free


class TestPolicerShaping:
    def _establish(self):
        topo = Topology(2, [(0, 1)])
        config = RouterConfig(
            num_ports=topo.num_ports,
            vcs_per_port=8,
            round_factor=2,
            enforce_round_budgets=False,
        )
        sim = Simulator()
        network = Network(
            topo, config, BiasedPriority(), sim, SeededRng(9, "shape")
        )
        protocol = ProbeProtocol(network)
        results = []
        session = protocol.establish(
            0,
            1,
            BandwidthRequest(2),
            lambda s, ok: results.append(ok),
            interarrival_cycles=config.rate_to_interarrival_cycles(55e6),
        )
        sim.run(50)
        assert results == [True]
        return network, sim, config, session

    def test_renegotiated_down_session_is_shaped(self):
        # A session renegotiated to half its rate keeps *generating* at
        # the old pace, but the policer admits only the new contract —
        # the second half of the run injects half the flits.
        network, sim, config, session = self._establish()
        interarrival = config.rate_to_interarrival_cycles(55e6)
        policer = TokenBucket(1.0 / interarrival, burst=2.0)
        source = CbrSource(
            sim,
            network.routers[0],
            -session.session_id,
            session.entry_ports[0],
            session.vcs[0],
            55e6,
            config,
            phase=1.0,
            policer=policer,
        )
        source.start()
        sim.run(10_000)
        first_half = source.flits_injected
        policer.set_rate(0.5 / interarrival, now=sim.now)
        sim.run(10_000)
        second_half = source.flits_injected - first_half
        assert first_half > 100
        assert second_half == pytest.approx(first_half / 2, rel=0.15)

    def test_unpoliced_source_injects_at_full_rate(self):
        network, sim, config, session = self._establish()
        source = CbrSource(
            sim,
            network.routers[0],
            -session.session_id,
            session.entry_ports[0],
            session.vcs[0],
            55e6,
            config,
            phase=1.0,
        )
        source.start()
        sim.run(10_000)
        expected = 10_000 / config.rate_to_interarrival_cycles(55e6)
        assert source.flits_injected == pytest.approx(expected, rel=0.05)


def _probe_build(topo, recorder, vcs=8):
    """A Network + ProbeProtocol with a flight recorder attached."""
    config = RouterConfig(
        num_ports=topo.num_ports,
        vcs_per_port=vcs,
        round_factor=2,
        enforce_round_budgets=False,
    )
    sim = Simulator()
    network = Network(
        topo, config, BiasedPriority(), sim, SeededRng(6, "probe"),
        recorder=recorder,
    )
    return network, ProbeProtocol(network), sim, config


def _drop(session, established):
    pass


class TestControlPlaneSpans:
    """Span trees emitted by the probe protocol under a recorder."""

    def test_backtracking_setup_span_tree(self):
        from repro.obs import FlightRecorder
        from repro.obs.spans import STATUS_OK

        # A 1->4 blocker fills the 1->3 link, so a 0->3 probe dead-ends
        # at node 1 and must backtrack via node 2 (the scenario from
        # test_probe_protocol.py, here checked for its span tree).
        topo = Topology(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        recorder = FlightRecorder(manifest={})  # enabled by default
        network, protocol, sim, config = _probe_build(topo, recorder)
        cap = config.round_length
        blocker = protocol.establish(1, 4, BandwidthRequest(cap), _drop)
        sim.run(200)
        assert blocker.established
        probe = protocol.establish(0, 3, BandwidthRequest(cap), _drop)
        sim.run(400)
        assert probe.established and probe.backtracks >= 1

        spans = recorder.spans
        root = spans.get(probe.span_id)
        assert root is not None and root.name == f"session {probe.session_id}"
        setup = spans.get(probe.setup_span)
        assert setup.parent_id == root.span_id
        assert setup.status == STATUS_OK
        assert setup.args["backtracks"] == probe.backtracks
        children = spans.children(setup.span_id)
        names = [s.name for s in children]
        assert "backtrack" in names
        assert names[-1] == "ack"
        assert names.count("hop") >= len(probe.path) - 1
        # Setup is closed; the session root stays open until teardown.
        assert setup.closed and not root.closed

    def test_blocked_setup_closes_root_as_blocked(self):
        from repro.obs import FlightRecorder
        from repro.obs.spans import STATUS_BLOCKED

        topo = Topology(3, [(0, 1), (1, 2)])
        recorder = FlightRecorder(manifest={})  # enabled by default
        network, protocol, sim, config = _probe_build(topo, recorder)
        cap = config.round_length
        first = protocol.establish(0, 2, BandwidthRequest(cap), _drop)
        sim.run(200)
        assert first.established
        second = protocol.establish(0, 2, BandwidthRequest(1), _drop)
        sim.run(200)
        assert not second.established
        root = recorder.spans.get(second.span_id)
        setup = recorder.spans.get(second.setup_span)
        assert root.closed and root.status == STATUS_BLOCKED
        assert setup.closed and setup.status == STATUS_BLOCKED

    def test_rolled_back_renegotiation_span_tree(self):
        from repro.obs import FlightRecorder
        from repro.obs.spans import STATUS_REFUSED, STATUS_ROLLED_BACK

        # Session A (0->2) renegotiates up into capacity held by session
        # B on the shared 1->2 link: the SET_BANDWIDTH word NACKs at that
        # hop and the earlier hop rolls back.
        topo = Topology(3, [(0, 1), (1, 2)])
        recorder = FlightRecorder(manifest={})  # enabled by default
        network, protocol, sim, config = _probe_build(topo, recorder)
        cap = config.round_length
        a = protocol.establish(0, 2, BandwidthRequest(2), _drop)
        sim.run(200)
        assert a.established
        b = protocol.establish(1, 2, BandwidthRequest(cap - 2), _drop)
        sim.run(200)
        assert b.established
        assert not protocol.renegotiate(a, BandwidthRequest(4))

        renegs = [
            s for s in recorder.spans.spans("renegotiation")
            if s.name == "renegotiation"
        ]
        assert len(renegs) == 1
        reneg = renegs[0]
        assert reneg.parent_id == a.span_id
        assert reneg.status == STATUS_ROLLED_BACK
        children = recorder.spans.children(reneg.span_id)
        statuses = [s.status for s in children if s.name == "set_bandwidth"]
        assert STATUS_REFUSED in statuses
        assert any(s.name == "rollback" for s in children)
        assert all(
            s.status == STATUS_ROLLED_BACK
            for s in children if s.name == "rollback"
        )

    def test_teardown_closes_the_session_tree(self):
        from repro.obs import FlightRecorder

        topo = Topology(3, [(0, 1), (1, 2)])
        recorder = FlightRecorder(manifest={})  # enabled by default
        network, protocol, sim, config = _probe_build(topo, recorder)
        session = protocol.establish(0, 2, BandwidthRequest(2), _drop)
        sim.run(200)
        assert session.established
        protocol.teardown(session)
        sim.run(200)
        assert not session.established
        assert recorder.spans.open_count == 0
        teardown = recorder.spans.get(session.teardown_span)
        assert teardown.parent_id == session.span_id
        hops = [
            s for s in recorder.spans.children(teardown.span_id)
            if s.name == "teardown_hop"
        ]
        assert len(hops) == len(session.path)


class TestChurnObservability:
    """End-to-end: churn run -> spans, SLOs, health, Perfetto export."""

    def test_trace_exports_complete_span_trees(self):
        from repro.obs import validate_chrome_trace

        result = run_churn_experiment(small_spec(telemetry=True))
        recorder = result.recorder
        spans = recorder.spans
        assert spans.open_count == 0
        assert spans.dropped == 0
        roots = spans.roots()
        assert len(roots) == result.established + result.blocked
        # Every established session shows the full lifecycle under its root.
        setups = spans.spans("setup")
        assert len(setups) == result.arrivals
        teardowns = [
            s for s in spans.spans("teardown") if s.name == "teardown"
        ]
        assert len(teardowns) == result.torn_down
        payload = recorder.chrome_trace()
        validate_chrome_trace(payload)
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(spans)
        assert {e["pid"] for e in xs} == {2}

    def test_streaming_stats_track_exact_lists(self):
        exact = run_churn_experiment(small_spec(exact_setup_stats=True))
        streaming = run_churn_experiment(small_spec())
        assert exact.setup_latencies  # exact mode keeps the list
        assert streaming.setup_latencies == []  # streaming stays bounded
        # Workload metrics are identical; only the estimator differs.
        assert exact.established == streaming.established
        assert exact.setup_mean == pytest.approx(streaming.setup_mean)
        assert streaming.setup_p99 == pytest.approx(exact.setup_p99, rel=0.25)
        assert streaming.setup_p50 <= streaming.setup_p99

    def test_slo_pass_and_breach(self):
        passing = run_churn_experiment(
            small_spec(slos=("setup_p99=500", "blocking_probability=0.9"))
        )
        assert passing.slo_ok
        assert passing.slo_state and not passing.slo_violations
        breached = run_churn_experiment(small_spec(slos=("setup_p99=3",)))
        assert not breached.slo_ok
        assert breached.slo_breached
        (violation, *_rest) = breached.slo_violations
        assert violation["metric"] == "setup_p99"
        assert violation["session_id"] in breached.violating_sessions
        assert breached.violating_sessions

    def test_slo_violation_references_a_real_span(self):
        result = run_churn_experiment(
            small_spec(telemetry=True, slos=("setup_p99=3",))
        )
        (violation, *_rest) = result.slo_violations
        span = result.recorder.spans.get(violation["span_id"])
        assert span is not None and span.name == "setup"
        root = result.recorder.spans.root_of(span.span_id)
        assert root.args["session"] == violation["session_id"]

    def test_malformed_slo_fails_at_spec_build(self):
        with pytest.raises(ValueError):
            small_spec(slos=("setup_p99",))

    def test_health_snapshot_rides_on_result(self):
        result = run_churn_experiment(
            small_spec(telemetry=True, slos=("blocking_probability=0.95",))
        )
        health = result.health
        assert health["schema"] == "health/1"
        assert health["extra"]["arrivals"] == result.arrivals
        assert health["extra"]["established"] == result.established
        assert not health["slo_breached"]
        assert health["spans"]["open"] == 0

    def test_health_trail_written_during_run(self, tmp_path):
        path = tmp_path / "health.jsonl"
        result = run_churn_experiment(
            small_spec(telemetry=True), health_path=path, health_every=5000
        )
        trail = [__import__("json").loads(line)
                 for line in path.read_text().splitlines()]
        assert len(trail) >= 2  # heartbeats plus the final snapshot
        assert trail[-1]["extra"]["torn_down"] == result.torn_down
        cycles = [s["cycle"] for s in trail]
        assert cycles == sorted(cycles)
