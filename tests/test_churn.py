"""Tests for the session-churn workload harness."""

import pytest

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.harness.churn import ChurnSpec, ChurnWorkload, run_churn_experiment
from repro.harness.single_router import SimulatedWorkerCrash
from repro.harness.sweep import SweepAxis, run_sweep
from repro.network.network import Network
from repro.network.policing import TokenBucket
from repro.network.probe_protocol import ProbeProtocol
from repro.network.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.traffic.cbr import CbrSource


def small_spec(**overrides):
    """A churn point small enough for unit tests (~1-2 s)."""
    base = dict(
        num_sessions=80,
        mean_interarrival_cycles=200.0,
        mean_holding_cycles=4000.0,
        drain_cycles=30_000,
        num_nodes=8,
        seed=3,
    )
    base.update(overrides)
    return ChurnSpec(**base)


class TestChurnSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnSpec(num_sessions=0)
        with pytest.raises(ValueError):
            ChurnSpec(mean_interarrival_cycles=0.0)
        with pytest.raises(ValueError):
            ChurnSpec(vbr_fraction=1.5)
        with pytest.raises(ValueError):
            ChurnSpec(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            ChurnSpec(num_nodes=1)

    def test_horizon_covers_arrivals_and_drain(self):
        spec = small_spec()
        assert spec.max_cycles > spec.num_sessions * spec.mean_interarrival_cycles
        assert spec.max_cycles > spec.drain_cycles


class TestChurnRun:
    def test_end_to_end_drains_leak_free(self):
        result = run_churn_experiment(small_spec())
        assert result.drained
        assert result.leak_free, result.leak_report
        assert result.arrivals == 80
        assert result.established + result.blocked == result.arrivals
        assert result.torn_down == result.established
        assert result.established > 0
        assert result.flits_delivered > 0
        assert result.qos.mean_delay_cycles > 0
        # Every delivered flit belonged to a session the rate table knew.
        assert result.unclassified_connections == 0
        assert 0.0 < result.setup_p50 <= result.setup_p99
        assert 0.0 <= result.blocking_probability < 1.0

    def test_deterministic_for_same_seed(self):
        a = run_churn_experiment(small_spec())
        b = run_churn_experiment(small_spec())
        assert a.established == b.established
        assert a.setup_p50 == b.setup_p50
        assert a.flits_delivered == b.flits_delivered
        assert a.qos.mean_delay_cycles == b.qos.mean_delay_cycles

    def test_seed_changes_workload(self):
        a = run_churn_experiment(small_spec(seed=3))
        b = run_churn_experiment(small_spec(seed=4))
        assert a.flits_delivered != b.flits_delivered

    def test_blocking_under_overload_stays_leak_free(self):
        # A small, VC-starved network with sessions arriving much faster
        # than they leave: establishment attempts must be NACKed back out
        # of the network, and every NACK must leave no residue.
        result = run_churn_experiment(
            small_spec(
                num_sessions=60,
                mean_interarrival_cycles=30.0,
                mean_holding_cycles=20_000.0,
                num_nodes=4,
                vcs_per_port=4,
                vbr_fraction=0.0,
            )
        )
        assert result.blocked > 0
        assert result.blocking_probability > 0.0
        assert result.drained
        assert result.leak_free, result.leak_report
        assert result.backtracks > 0 or result.blocked > 0

    def test_renegotiations_happen_and_balance(self):
        result = run_churn_experiment(
            small_spec(vbr_fraction=1.0, renegotiation_fraction=1.0)
        )
        assert result.renegotiations_applied > 0
        assert result.drained
        assert result.leak_free, result.leak_report

    def test_diurnal_modulation_changes_arrival_spacing(self):
        flat = run_churn_experiment(small_spec())
        wavy = run_churn_experiment(
            small_spec(diurnal_amplitude=0.8, diurnal_period_cycles=4000.0)
        )
        assert wavy.drained and wavy.leak_free
        assert wavy.flits_delivered != flat.flits_delivered

    def test_unpoliced_run_also_balances(self):
        result = run_churn_experiment(small_spec(police=False))
        assert result.drained
        assert result.leak_free, result.leak_report


class TestChurnTelemetry:
    def test_channels_recorded(self):
        result = run_churn_experiment(small_spec(telemetry=True))
        assert result.recorder is not None
        names = set(result.recorder.telemetry.names())
        assert "churn.active_sessions" in names
        assert "churn.blocking_rate" in names
        assert "churn.setup_latency_last" in names

    def test_disabled_by_default(self):
        assert run_churn_experiment(small_spec()).recorder is None


class TestChurnSweep:
    def test_parallel_rows_match_serial(self):
        axes = [
            SweepAxis("mean_interarrival_cycles", (150.0, 300.0)),
            SweepAxis("vbr_fraction", (0.0, 0.5)),
        ]
        spec = small_spec(num_sessions=40)
        serial = run_sweep(spec, axes, _runner=run_churn_experiment)
        parallel = run_sweep(spec, axes, jobs=2, _runner=run_churn_experiment)
        columns = ["blocking_probability", "setup_p50", "mean_delay_cycles"]
        assert serial.rows(columns) == parallel.rows(columns)
        assert len(serial.results) == 4


class TestChurnCheckpoint:
    def test_crash_and_resume_matches_straight_run(self, tmp_path):
        spec = small_spec(num_sessions=40)
        path = tmp_path / "churn.ckpt"
        straight = run_churn_experiment(spec)
        with pytest.raises(SimulatedWorkerCrash):
            run_churn_experiment(
                spec,
                checkpoint_every=4000,
                checkpoint_path=path,
                _crash_at_cycle=8000,
            )
        assert path.exists()
        resumed = run_churn_experiment(
            spec, checkpoint_every=4000, checkpoint_path=path, resume=True
        )
        assert resumed.checkpoint["resumed_from_cycle"] is not None
        assert resumed.established == straight.established
        assert resumed.blocked == straight.blocked
        assert resumed.flits_delivered == straight.flits_delivered
        assert resumed.setup_p50 == straight.setup_p50
        assert resumed.qos.mean_delay_cycles == straight.qos.mean_delay_cycles
        assert resumed.leak_free, resumed.leak_report

    def test_checkpoint_requires_path(self):
        with pytest.raises(ValueError):
            run_churn_experiment(small_spec(), checkpoint_every=1000)

    def test_workload_snapshot_roundtrip(self, tmp_path):
        spec = small_spec(num_sessions=30)
        workload = ChurnWorkload(spec)
        workload.run_to(5000)
        path = tmp_path / "mid.ckpt"
        workload.checkpoint(path)
        restored = ChurnWorkload.resume(path, expect_spec=spec)
        assert restored.now == workload.now
        assert restored.arrivals_launched == workload.arrivals_launched
        a = workload.result()
        b = restored.result()
        assert a.flits_delivered == b.flits_delivered
        assert a.leak_free and b.leak_free


class TestPolicerShaping:
    def _establish(self):
        topo = Topology(2, [(0, 1)])
        config = RouterConfig(
            num_ports=topo.num_ports,
            vcs_per_port=8,
            round_factor=2,
            enforce_round_budgets=False,
        )
        sim = Simulator()
        network = Network(
            topo, config, BiasedPriority(), sim, SeededRng(9, "shape")
        )
        protocol = ProbeProtocol(network)
        results = []
        session = protocol.establish(
            0,
            1,
            BandwidthRequest(2),
            lambda s, ok: results.append(ok),
            interarrival_cycles=config.rate_to_interarrival_cycles(55e6),
        )
        sim.run(50)
        assert results == [True]
        return network, sim, config, session

    def test_renegotiated_down_session_is_shaped(self):
        # A session renegotiated to half its rate keeps *generating* at
        # the old pace, but the policer admits only the new contract —
        # the second half of the run injects half the flits.
        network, sim, config, session = self._establish()
        interarrival = config.rate_to_interarrival_cycles(55e6)
        policer = TokenBucket(1.0 / interarrival, burst=2.0)
        source = CbrSource(
            sim,
            network.routers[0],
            -session.session_id,
            session.entry_ports[0],
            session.vcs[0],
            55e6,
            config,
            phase=1.0,
            policer=policer,
        )
        source.start()
        sim.run(10_000)
        first_half = source.flits_injected
        policer.set_rate(0.5 / interarrival, now=sim.now)
        sim.run(10_000)
        second_half = source.flits_injected - first_half
        assert first_half > 100
        assert second_half == pytest.approx(first_half / 2, rel=0.15)

    def test_unpoliced_source_injects_at_full_rate(self):
        network, sim, config, session = self._establish()
        source = CbrSource(
            sim,
            network.routers[0],
            -session.session_id,
            session.entry_ports[0],
            session.vcs[0],
            55e6,
            config,
            phase=1.0,
        )
        source.start()
        sim.run(10_000)
        expected = 10_000 / config.rate_to_interarrival_cycles(55e6)
        assert source.flits_injected == pytest.approx(expected, rel=0.05)
