"""Tests for RouterConfig validation and derived quantities."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.config import RouterConfig


class TestValidation:
    def test_defaults_are_paper_config(self):
        config = RouterConfig()
        assert config.num_ports == 8
        assert config.vcs_per_port == 256
        assert config.link_rate_bps == pytest.approx(1.24e9)
        assert config.flit_size_bits == 128

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_ports", 0),
            ("vcs_per_port", 0),
            ("link_rate_bps", 0.0),
            ("flit_size_bits", 0),
            ("phit_size_bits", 0),
            ("vc_buffer_flits", 0),
            ("memory_modules", 0),
            ("round_factor", 0),
            ("candidates", 0),
            ("vbr_concurrency_factor", 0.5),
            ("best_effort_reserved_fraction", 1.0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            RouterConfig(**{field: value})

    def test_phit_larger_than_flit_rejected(self):
        with pytest.raises(ValueError):
            RouterConfig(flit_size_bits=64, phit_size_bits=128)

    def test_flit_must_be_whole_phits(self):
        with pytest.raises(ValueError):
            RouterConfig(flit_size_bits=100, phit_size_bits=16)


class TestDerived:
    def test_flit_cycle_is_103ns(self):
        # 128 bits / 1.24 Gbps ~= 103 ns — the paper's flit cycle.
        config = RouterConfig()
        assert config.flit_cycle_ns == pytest.approx(103.2, abs=0.2)

    def test_phits_per_flit(self):
        assert RouterConfig().phits_per_flit == 8

    def test_round_length_is_k_times_v(self):
        config = RouterConfig(round_factor=2, vcs_per_port=256)
        assert config.round_length == 512

    def test_total_vcs(self):
        assert RouterConfig().total_vcs == 2048

    def test_aggregate_bandwidth(self):
        config = RouterConfig()
        assert config.aggregate_bandwidth_bps == pytest.approx(8 * 1.24e9)

    def test_cycles_to_us(self):
        config = RouterConfig()
        assert config.cycles_to_us(1.0) == pytest.approx(0.1032, abs=1e-3)

    def test_full_rate_interarrival_is_one_cycle(self):
        config = RouterConfig()
        assert config.rate_to_interarrival_cycles(1.24e9) == pytest.approx(1.0)

    def test_64kbps_interarrival(self):
        config = RouterConfig()
        assert config.rate_to_interarrival_cycles(64e3) == pytest.approx(19375.0)

    def test_rate_to_interarrival_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            RouterConfig().rate_to_interarrival_cycles(0.0)

    def test_rate_to_cycles_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            RouterConfig().rate_to_cycles_per_round(-1.0)

    def test_allocation_at_least_one_cycle(self):
        config = RouterConfig()
        assert config.rate_to_cycles_per_round(64e3) == 1

    def test_full_rate_allocation_is_whole_round(self):
        config = RouterConfig()
        assert config.rate_to_cycles_per_round(1.24e9) == config.round_length

    @given(st.floats(min_value=1e3, max_value=1.24e9))
    def test_allocation_never_undershoots_rate(self, rate):
        config = RouterConfig()
        cycles = config.rate_to_cycles_per_round(rate)
        granted_rate = cycles / config.round_length * config.link_rate_bps
        assert granted_rate >= rate * (1 - 1e-12)

    @given(st.floats(min_value=1e3, max_value=1.24e9))
    def test_allocation_overshoot_below_one_cycle(self, rate):
        config = RouterConfig()
        cycles = config.rate_to_cycles_per_round(rate)
        exact = rate / config.link_rate_bps * config.round_length
        assert cycles - exact < 1.0 or cycles == 1

    def test_with_returns_modified_copy(self):
        base = RouterConfig()
        other = base.with_(candidates=4)
        assert other.candidates == 4
        assert base.candidates == 8
        assert other.num_ports == base.num_ports

    def test_frozen(self):
        config = RouterConfig()
        with pytest.raises(Exception):
            config.num_ports = 4

    def test_best_effort_reservation_reduces_allocatable(self):
        config = RouterConfig(best_effort_reserved_fraction=0.25)
        assert config.round_length == 512
        # Reservation is applied by the BandwidthAllocator, checked there.
        assert config.best_effort_reserved_fraction == 0.25
