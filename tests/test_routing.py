"""Tests for EPB, up*/down* and the adaptive routing relation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.topology import Topology, hypercube, irregular, mesh, ring
from repro.routing.adaptive import AdaptiveRouter
from repro.routing.epb import count_minimal_paths, epb_search, profitable_ports
from repro.routing.history import HistoryStore
from repro.routing.updown import UpDownRouting
from repro.sim.rng import SeededRng


def always(node, port, neighbor):
    return True


def never(node, port, neighbor):
    return False


class TestHistoryStore:
    def test_mark_and_query(self):
        h = HistoryStore()
        assert not h.was_searched((0, -1), 2)
        h.mark_searched((0, -1), 2)
        assert h.was_searched((0, -1), 2)
        assert h.searched_at((0, -1)) == {2}

    def test_points_independent(self):
        h = HistoryStore()
        h.mark_searched((0, -1), 2)
        assert not h.was_searched((1, 0), 2)

    def test_clear_point(self):
        h = HistoryStore()
        h.mark_searched((0, -1), 2)
        h.clear_point((0, -1))
        assert not h.was_searched((0, -1), 2)
        h.clear_point((9, 9))  # no-op

    def test_total_marks(self):
        h = HistoryStore()
        h.mark_searched((0, -1), 1)
        h.mark_searched((0, -1), 2)
        h.mark_searched((1, 0), 1)
        assert h.total_marks() == 3
        h.clear()
        assert h.total_marks() == 0


class TestProfitablePorts:
    def test_only_closer_neighbors(self):
        topo = mesh(3, 1)  # 0 - 1 - 2
        ports = profitable_ports(topo, 0, 2)
        assert [n for _, n in ports] == [1]
        assert profitable_ports(topo, 2, 2) == []

    def test_multiple_minimal_directions(self):
        topo = mesh(2, 2)
        ports = profitable_ports(topo, 0, 3)
        assert {n for _, n in ports} == {1, 2}


class TestEpbSearch:
    def test_trivial_same_node(self):
        topo = ring(4)
        result = epb_search(topo, 1, 1, always)
        assert result.success
        assert result.path == [1]
        assert result.hops == 0

    def test_finds_minimal_path(self):
        topo = mesh(3, 3)
        result = epb_search(topo, 0, 8, always)
        assert result.success
        assert result.hops == topo.distance(0, 8) == 4
        assert result.path[0] == 0
        assert result.path[-1] == 8
        # Every step is a real link and strictly profitable.
        for a, b in zip(result.path, result.path[1:]):
            assert b in topo.neighbors(a)
            assert topo.distance(b, 8) < topo.distance(a, 8)

    def test_ports_match_path(self):
        topo = mesh(3, 3)
        result = epb_search(topo, 0, 8, always)
        for node, port, nxt in zip(result.path, result.ports, result.path[1:]):
            assert topo.neighbor_on_port(node, port) == nxt

    def test_fails_when_nothing_admissible(self):
        topo = ring(4)
        result = epb_search(topo, 0, 2, never)
        assert not result.success
        assert result.links_searched > 0

    def test_backtracks_around_blocked_branch(self):
        # 0-1-3 and 0-2-3: block the 1->3 link; EPB must back out of 1.
        topo = Topology(4, [(0, 1), (0, 2), (1, 3), (2, 3)])

        def admissible(node, port, neighbor):
            return not (node == 1 and neighbor == 3)

        result = epb_search(topo, 0, 3, admissible)
        assert result.success
        assert result.path == [0, 2, 3]
        assert result.backtracks >= 1

    def test_exhaustive_search_visits_all_minimal_paths(self):
        topo = mesh(2, 2)
        result = epb_search(topo, 0, 3, never)
        # Both minimal branches out of node 0 must have been tried.
        assert result.links_searched >= 2

    def test_minimal_only_no_detours(self):
        # Minimal path blocked entirely -> failure even though a longer
        # path exists (EPB searches minimal paths only).
        topo = Topology(4, [(0, 1), (1, 2), (0, 3), (3, 2)])
        # Both 0-1-2 and 0-3-2 are minimal here; block both middle hops.
        def admissible(node, port, neighbor):
            return node == 0

        result = epb_search(topo, 0, 2, admissible)
        assert not result.success

    @settings(max_examples=25)
    @given(st.integers(0, 500), st.integers(5, 14))
    def test_always_succeeds_on_open_network(self, seed, nodes):
        rng = SeededRng(seed, "epb")
        topo = irregular(nodes, rng, mean_degree=3.0)
        src = seed % nodes
        dst = (seed * 7 + 1) % nodes
        if src == dst:
            dst = (dst + 1) % nodes
        result = epb_search(topo, src, dst, always)
        assert result.success
        assert result.hops == topo.distance(src, dst)

    def test_count_minimal_paths(self):
        topo = mesh(2, 2)
        assert count_minimal_paths(topo, 0, 3) == 2
        assert count_minimal_paths(topo, 0, 0) == 1
        assert count_minimal_paths(mesh(3, 3), 0, 8) == 6


class TestUpDown:
    def test_requires_connected(self):
        topo = Topology(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            UpDownRouting(topo)

    def test_levels_from_root(self):
        topo = mesh(3, 1)
        ud = UpDownRouting(topo, root=0)
        assert ud.level == [0, 1, 2]

    def test_is_up_toward_root(self):
        topo = mesh(3, 1)
        ud = UpDownRouting(topo, root=0)
        assert ud.is_up(1, 0)
        assert not ud.is_up(0, 1)

    def test_tie_broken_by_id(self):
        topo = ring(4)
        ud = UpDownRouting(topo, root=0)
        # Nodes 1 and 3 share level 1.
        assert ud.is_up(3, 1)
        assert not ud.is_up(1, 3)

    def test_route_is_legal(self):
        topo = irregular(12, SeededRng(3, "ud"), mean_degree=3.0)
        ud = UpDownRouting(topo)
        for src in range(12):
            for dst in range(12):
                if src == dst:
                    continue
                path = ud.route(src, dst)
                assert path[0] == src and path[-1] == dst
                # Once the path goes down it never goes up again.
                gone_down = False
                for a, b in zip(path, path[1:]):
                    up = ud.is_up(a, b)
                    if gone_down:
                        assert not up, f"down->up violation in {path}"
                    if not up:
                        gone_down = True

    def test_route_trivial(self):
        topo = ring(4)
        assert UpDownRouting(topo).route(2, 2) == [2]

    def test_legal_next_hops_never_dead_end(self):
        topo = irregular(10, SeededRng(8, "dead"), mean_degree=3.0)
        ud = UpDownRouting(topo)
        for src in range(10):
            for dst in range(10):
                if src == dst:
                    continue
                # Greedily follow any legal hop; must terminate.
                node, arrived_up, hops = src, None, 0
                while node != dst:
                    choices = ud.legal_next_hops(node, dst, arrived_up)
                    assert choices, f"dead end at {node} toward {dst}"
                    port, nxt, up = min(
                        choices, key=lambda c: (topo.distance(c[1], dst), c[0])
                    )
                    arrived_up = up
                    node = nxt
                    hops += 1
                    assert hops <= 4 * topo.num_nodes


class TestAdaptiveRouter:
    def test_choices_empty_at_destination(self):
        router = AdaptiveRouter(mesh(2, 2))
        assert router.choices(3, 3) == []

    def test_adaptive_choices_are_minimal(self):
        topo = mesh(3, 3)
        router = AdaptiveRouter(topo)
        for choice in router.choices(0, 8):
            if not choice.escape:
                assert topo.distance(choice.next_node, 8) < topo.distance(0, 8)

    def test_escape_choices_respect_legality(self):
        topo = irregular(10, SeededRng(4, "ad"), mean_degree=3.0)
        router = AdaptiveRouter(topo)
        for node in range(10):
            for dst in range(10):
                if node == dst:
                    continue
                for choice in router.choices(node, dst, arrived_up=False):
                    if choice.escape:
                        assert not router.updown.is_up(node, choice.next_node)

    def test_route_reaches_destination(self):
        topo = hypercube(3)
        router = AdaptiveRouter(topo)
        for src in range(8):
            for dst in range(8):
                if src != dst:
                    path = router.route(src, dst)
                    assert path[0] == src and path[-1] == dst

    @settings(max_examples=20)
    @given(st.integers(0, 300), st.integers(5, 12))
    def test_escape_only_route_terminates(self, seed, nodes):
        topo = irregular(nodes, SeededRng(seed, "esc"), mean_degree=3.0)
        router = AdaptiveRouter(topo)
        src, dst = 0, nodes - 1
        path = router.route(src, dst, prefer_adaptive=False)
        assert path[-1] == dst
