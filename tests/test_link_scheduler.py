"""Tests for link scheduling: candidate selection and round accounting."""

import pytest

from repro.core.config import RouterConfig
from repro.core.flit import Flit, FlitType
from repro.core.link_scheduler import VBR_EXCESS_OFFSET, Candidate, LinkScheduler
from repro.core.priority import BiasedPriority, StaticConnectionPriority
from repro.core.status_vectors import StatusBank
from repro.core.virtual_channel import ServiceClass, VirtualChannel
from repro.sim.rng import SeededRng


def build(
    num_vcs=8,
    candidates=4,
    scheme=None,
    selection="per_output",
    credit_ok=True,
    enforce_budgets=True,
    vbr_excess_discipline="priority",
):
    config = RouterConfig(
        num_ports=4,
        vcs_per_port=num_vcs,
        candidates=candidates,
        enforce_round_budgets=enforce_budgets,
        vbr_excess_discipline=vbr_excess_discipline,
    )
    vcs = [VirtualChannel(0, i, config.vc_buffer_flits) for i in range(num_vcs)]
    status = StatusBank(num_vcs)
    scheduler = LinkScheduler(
        0,
        config,
        vcs,
        status,
        scheme or BiasedPriority(),
        credit_check=lambda port, vc: credit_ok,
        selection=selection,
        rng=SeededRng(1, "ls"),
    )
    return scheduler, vcs, status


def activate(vcs, status, index, output_port, service=ServiceClass.CBR, created=0,
             interarrival=10.0, static=0.0):
    vc = vcs[index]
    vc.bind(100 + index, service, output_port)
    vc.interarrival_cycles = interarrival
    vc.static_priority = static
    flit = Flit(FlitType.DATA, connection_id=100 + index, created=created)
    vc.enqueue(flit, now=created)
    status.vector("flits_available").set(index)
    status.vector("connection_active").set(index)
    if output_port >= 0:
        # In a full router this is Router.assign_route's job; standalone
        # scheduler tests mirror the route into the vector by hand.
        status.vector("routed").set(index)
    return vc


class TestCandidateSelection:
    def test_empty_when_no_flits(self):
        scheduler, _, _ = build()
        assert scheduler.candidates(now=0) == []

    def test_offers_eligible_vcs(self):
        scheduler, vcs, status = build()
        activate(vcs, status, 2, output_port=1)
        activate(vcs, status, 5, output_port=3)
        offered = scheduler.candidates(now=5)
        assert {c.vc_index for c in offered} == {2, 5}
        assert all(c.input_port == 0 for c in offered)

    def test_respects_candidate_limit(self):
        scheduler, vcs, status = build(candidates=2)
        for i in range(6):
            activate(vcs, status, i, output_port=i % 4)
        assert len(scheduler.candidates(now=5)) == 2

    def test_credit_gating(self):
        scheduler, vcs, status = build(credit_ok=False)
        activate(vcs, status, 0, output_port=1)
        # The fast path reads the credits_available vector (the router
        # mirrors downstream credit state into it); the reference path
        # polls the credit_check callable.  Gate both.
        status.vector("credits_available").clear(0)
        assert scheduler.candidates(now=5) == []
        scheduler.fast_path = False
        assert scheduler.candidates(now=5) == []

    def test_desynchronised_status_vector_detected(self):
        scheduler, vcs, status = build()
        status.vector("flits_available").set(3)  # no flit actually queued
        status.vector("routed").set(3)  # keep it in the fused mask
        with pytest.raises(RuntimeError, match="out of sync"):
            scheduler.candidates(now=0)
        scheduler.fast_path = False
        with pytest.raises(RuntimeError, match="out of sync"):
            scheduler.candidates(now=0)

    def test_priority_order_in_output(self):
        scheduler, vcs, status = build(selection="priority")
        activate(vcs, status, 0, output_port=0, created=5)   # young
        activate(vcs, status, 1, output_port=1, created=0)   # old -> higher
        offered = scheduler.candidates(now=10)
        assert [c.vc_index for c in offered] == [1, 0]

    def test_per_output_dedupes_outputs(self):
        scheduler, vcs, status = build(selection="per_output", candidates=8)
        activate(vcs, status, 0, output_port=2, created=5)
        activate(vcs, status, 1, output_port=2, created=0)  # older, wins slot
        activate(vcs, status, 2, output_port=3, created=3)
        offered = scheduler.candidates(now=10)
        assert {c.output_port for c in offered} == {2, 3}
        port2 = next(c for c in offered if c.output_port == 2)
        assert port2.vc_index == 1

    def test_random_selection_needs_rng(self):
        config = RouterConfig(num_ports=4, vcs_per_port=4)
        with pytest.raises(ValueError):
            LinkScheduler(
                0, config, [], StatusBank(4), BiasedPriority(),
                lambda p, v: True, selection="random", rng=None,
            )

    def test_unknown_selection_rejected(self):
        config = RouterConfig(num_ports=4, vcs_per_port=4)
        with pytest.raises(ValueError):
            LinkScheduler(
                0, config, [], StatusBank(4), BiasedPriority(),
                lambda p, v: True, selection="best",
            )

    def test_random_selection_bounded(self):
        scheduler, vcs, status = build(selection="random", candidates=2)
        for i in range(5):
            activate(vcs, status, i, output_port=i % 4)
        offered = scheduler.candidates(now=1)
        assert len(offered) == 2

    def test_rotating_selection_is_fair(self):
        scheduler, vcs, status = build(selection="rotating", candidates=1)
        for i in range(4):
            activate(vcs, status, i, output_port=0, created=0)
        seen = set()
        for t in range(8):
            offered = scheduler.candidates(now=t + 1)
            assert len(offered) == 1
            seen.add(offered[0].vc_index)
        assert seen == {0, 1, 2, 3}

    def test_counters(self):
        scheduler, vcs, status = build()
        activate(vcs, status, 0, output_port=0)
        scheduler.candidates(now=1)
        assert scheduler.candidates_offered == 1
        assert scheduler.cycles_with_candidates == 1

    def test_rotating_pointer_advances_on_underfull_scans(self):
        """Regression: the rotating pointer must advance even when the
        eligible pool fits within the candidate limit.  It used to stay
        put through a quiet spell, so the next oversubscribed scan
        resumed from a stale pointer and re-favoured low-index VCs."""
        scheduler, vcs, status = build(selection="rotating", candidates=1)
        # Quiet spell: only VC 0 is eligible; each scan fits the limit.
        activate(vcs, status, 0, output_port=0, created=0)
        for t in range(3):
            offered = scheduler.candidates(now=t + 1)
            assert [c.vc_index for c in offered] == [0]
        # Burst: VCs 0..3 all eligible.  A fair scan resumes past the VC
        # serviced during the quiet spell instead of re-favouring VC 0.
        for i in range(1, 4):
            activate(vcs, status, i, output_port=0, created=0)
        offered = scheduler.candidates(now=10)
        assert [c.vc_index for c in offered] == [1]

    def test_rotating_full_pool_scan_keeps_cycling(self):
        """A scan that takes the whole pool wraps the full circle; the
        next limited scan continues from where the wrap ended."""
        scheduler, vcs, status = build(selection="rotating", candidates=8)
        for i in range(4):
            activate(vcs, status, i, output_port=0, created=0)
        offered = scheduler.candidates(now=1)  # pool of 4 fits limit 8
        assert {c.vc_index for c in offered} == {0, 1, 2, 3}
        # Pointer wrapped past VC 3 back to 0; a limit-2 scan starts there.
        offered = scheduler.candidates(now=2, limit=2)
        assert {c.vc_index for c in offered} == {0, 1}
        offered = scheduler.candidates(now=3, limit=2)
        assert {c.vc_index for c in offered} == {2, 3}


class TestRoundBudgets:
    def test_cbr_capped_at_allocation(self):
        scheduler, vcs, status = build()
        vc = activate(vcs, status, 0, output_port=0)
        vc.allocated_cycles = 2
        status.vector("cbr_service_requested").set(0)
        scheduler.on_flit_serviced(vc)
        assert scheduler.candidates(now=1)  # 1 of 2 used
        scheduler.on_flit_serviced(vc)
        assert status.vector("cbr_bandwidth_serviced").test(0)
        assert scheduler.candidates(now=2) == []  # budget exhausted

    def test_round_boundary_resets_budget(self):
        scheduler, vcs, status = build()
        vc = activate(vcs, status, 0, output_port=0)
        vc.allocated_cycles = 1
        scheduler.on_flit_serviced(vc)
        assert scheduler.candidates(now=1) == []
        scheduler.on_round_boundary()
        assert vc.serviced_this_round == 0
        assert not status.vector("cbr_bandwidth_serviced").test(0)
        assert scheduler.candidates(now=2)

    def test_budgets_ignored_when_disabled(self):
        scheduler, vcs, status = build(enforce_budgets=False)
        vc = activate(vcs, status, 0, output_port=0)
        vc.allocated_cycles = 1
        scheduler.on_flit_serviced(vc)
        scheduler.on_flit_serviced(vc)
        assert scheduler.candidates(now=1)  # no gating

    def test_vbr_permanent_then_excess_tier(self):
        scheduler, vcs, status = build(scheme=StaticConnectionPriority())
        vc = activate(
            vcs, status, 0, output_port=0, service=ServiceClass.VBR, static=0.5
        )
        vc.permanent_cycles = 1
        vc.peak_cycles = 3
        in_contract = scheduler.candidates(now=1)[0]
        scheduler.on_flit_serviced(vc)
        excess = scheduler.candidates(now=2)[0]
        # Excess tier priority is pushed below in-contract data.
        assert excess.priority < in_contract.priority
        # Offset + dominated connection priority + the scheme's own value.
        assert excess.priority == pytest.approx(VBR_EXCESS_OFFSET + 0.5e6 + 0.5)

    def test_vbr_capped_at_peak(self):
        scheduler, vcs, status = build()
        vc = activate(vcs, status, 0, output_port=0, service=ServiceClass.VBR)
        vc.permanent_cycles = 1
        vc.peak_cycles = 2
        scheduler.on_flit_serviced(vc)
        scheduler.on_flit_serviced(vc)
        assert status.vector("vbr_bandwidth_serviced").test(0)
        assert scheduler.candidates(now=1) == []

    def test_vbr_excess_ordered_by_connection_priority(self):
        # §4.3: excess bandwidth serviced one connection at a time, in
        # priority order.
        scheduler, vcs, status = build(
            scheme=StaticConnectionPriority(), candidates=8
        )
        low = activate(
            vcs, status, 0, output_port=0, service=ServiceClass.VBR, static=0.1
        )
        high = activate(
            vcs, status, 1, output_port=1, service=ServiceClass.VBR, static=0.9
        )
        for vc in (low, high):
            vc.permanent_cycles = 1
            vc.peak_cycles = 5
            scheduler.on_flit_serviced(vc)  # consume the permanent cycle
        offered = scheduler.candidates(now=3)
        assert [c.vc_index for c in offered] == [1, 0]


class TestVbrRoundAccounting:
    """Round accounting for VBR VCs across a round boundary (§4.3).

    ``vbr_bandwidth_serviced`` is only set once a VC reaches its peak
    allocation, and ``on_round_boundary`` resets serviced counters through
    two partially overlapping paths (the serviced vectors and the
    ``connection_active`` sweep); these pin the combined behaviour for
    permanent-only, permanent->excess and peak-capped VCs under both
    excess-service disciplines.
    """

    def _vbr(self, scheduler, vcs, status, index, *, permanent, peak,
             static=0.5, output_port=0):
        vc = activate(
            vcs, status, index, output_port=output_port,
            service=ServiceClass.VBR, static=static,
        )
        vc.permanent_cycles = permanent
        vc.peak_cycles = peak
        status.vector("vbr_service_requested").set(index)
        return vc

    @pytest.mark.parametrize("discipline", ["priority", "shared"])
    def test_permanent_only_vc_stays_in_contract(self, discipline):
        scheduler, vcs, status = build(
            scheme=StaticConnectionPriority(), vbr_excess_discipline=discipline
        )
        vc = self._vbr(scheduler, vcs, status, 0, permanent=3, peak=5)
        scheduler.on_flit_serviced(vc)
        scheduler.on_flit_serviced(vc)  # 2 of 3 permanent cycles
        offered = scheduler.candidates(now=1)
        assert offered and offered[0].priority == pytest.approx(0.5)
        assert not status.vector("vbr_bandwidth_serviced").test(0)
        scheduler.on_round_boundary()
        # Reset arrives via the connection_active sweep (no serviced bit).
        assert vc.serviced_this_round == 0

    @pytest.mark.parametrize("discipline,expected_offset", [
        ("priority", VBR_EXCESS_OFFSET + 0.5e6),
        ("shared", VBR_EXCESS_OFFSET),
    ])
    def test_excess_tier_resets_to_contract_at_boundary(
        self, discipline, expected_offset
    ):
        scheduler, vcs, status = build(
            scheme=StaticConnectionPriority(), vbr_excess_discipline=discipline
        )
        vc = self._vbr(scheduler, vcs, status, 0, permanent=1, peak=4)
        scheduler.on_flit_serviced(vc)  # permanent consumed -> excess tier
        excess = scheduler.candidates(now=1)[0]
        assert excess.priority == pytest.approx(expected_offset + 0.5)
        assert not status.vector("vbr_bandwidth_serviced").test(0)
        scheduler.on_round_boundary()
        assert vc.serviced_this_round == 0
        back = scheduler.candidates(now=2)[0]
        assert back.priority == pytest.approx(0.5)  # in-contract again

    @pytest.mark.parametrize("discipline", ["priority", "shared"])
    def test_peak_capped_vc_regains_service_after_boundary(self, discipline):
        scheduler, vcs, status = build(
            scheme=StaticConnectionPriority(), vbr_excess_discipline=discipline
        )
        vc = self._vbr(scheduler, vcs, status, 0, permanent=1, peak=2)
        scheduler.on_flit_serviced(vc)
        scheduler.on_flit_serviced(vc)  # hits the peak cap
        assert status.vector("vbr_bandwidth_serviced").test(0)
        assert scheduler.candidates(now=1) == []
        scheduler.on_round_boundary()
        # The VC is reset exactly once despite matching both reset paths
        # (serviced vector AND connection_active sweep).
        assert vc.serviced_this_round == 0
        assert not status.vector("vbr_bandwidth_serviced").test(0)
        offered = scheduler.candidates(now=2)
        assert offered and offered[0].priority == pytest.approx(0.5)

    @pytest.mark.parametrize("discipline", ["priority", "shared"])
    def test_mixed_population_round_boundary(self, discipline):
        """Permanent-only, excess-tier and peak-capped VCs plus a CBR VC
        all come out of a round boundary with clean accounting."""
        scheduler, vcs, status = build(
            scheme=StaticConnectionPriority(),
            candidates=8,
            vbr_excess_discipline=discipline,
        )
        permanent_only = self._vbr(
            scheduler, vcs, status, 0, permanent=3, peak=6, static=0.1
        )
        in_excess = self._vbr(
            scheduler, vcs, status, 1, permanent=1, peak=6, static=0.2,
            output_port=1,
        )
        capped = self._vbr(
            scheduler, vcs, status, 2, permanent=1, peak=2, static=0.3,
            output_port=2,
        )
        cbr = activate(vcs, status, 3, output_port=3, static=0.4)
        cbr.allocated_cycles = 1
        status.vector("cbr_service_requested").set(3)
        scheduler.on_flit_serviced(permanent_only)
        scheduler.on_flit_serviced(in_excess)
        scheduler.on_flit_serviced(in_excess)
        scheduler.on_flit_serviced(capped)
        scheduler.on_flit_serviced(capped)
        scheduler.on_flit_serviced(cbr)
        assert status.vector("vbr_bandwidth_serviced").test(2)
        assert status.vector("cbr_bandwidth_serviced").test(3)
        offered = {c.vc_index for c in scheduler.candidates(now=1)}
        assert offered == {0, 1}  # capped VBR and capped CBR gated off
        scheduler.on_round_boundary()
        for vc in (permanent_only, in_excess, capped, cbr):
            assert vc.serviced_this_round == 0
        assert not status.vector("vbr_bandwidth_serviced").any()
        assert not status.vector("cbr_bandwidth_serviced").any()
        offered = {c.vc_index for c in scheduler.candidates(now=2)}
        assert offered == {0, 1, 2, 3}


class TestCandidateDataclass:
    def test_sort_key_descending_priority(self):
        a = Candidate(2.0, 0, 1, 0)
        b = Candidate(1.0, 0, 2, 0)
        assert sorted([b, a], key=Candidate.sort_key)[0] is a

    def test_sort_key_tie_break_by_vc(self):
        a = Candidate(1.0, 0, 5, 0)
        b = Candidate(1.0, 0, 2, 0)
        assert sorted([a, b], key=Candidate.sort_key)[0] is b


class TestUnroutedPackets:
    def test_unrouted_vc_not_offered(self):
        """A best-effort packet whose routing is still blocked (no
        downstream VC, output_port == -1) must not become a candidate —
        granting it would configure the crossbar with an invalid port."""
        scheduler, vcs, status = build()
        vc = activate(
            vcs, status, 0, output_port=-1, service=ServiceClass.BEST_EFFORT
        )
        assert scheduler.candidates(now=5) == []
        # Once routing assigns an output the packet becomes schedulable.
        # (In a full router Router.assign_route sets the field and the
        # routed bit together.)
        vc.output_port = 2
        status.vector("routed").set(0)
        offered = scheduler.candidates(now=6)
        assert len(offered) == 1
        assert offered[0].output_port == 2
