"""Tests for PCS connection establishment over the network (EPB + reserve)."""

import pytest

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.network.connection import ConnectionManager
from repro.network.network import Network
from repro.network.topology import Topology, mesh, ring
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng


def build(topo=None, round_factor=2, vcs=8):
    topo = topo or mesh(3, 3)
    config = RouterConfig(
        num_ports=topo.num_ports,
        vcs_per_port=vcs,
        round_factor=round_factor,
        enforce_round_budgets=False,
    )
    sim = Simulator()
    network = Network(
        topo, config, BiasedPriority(), sim, SeededRng(5, "cm")
    )
    return network, ConnectionManager(network), sim, config


class TestEstablish:
    def test_minimal_path_reserved(self):
        network, manager, _, _ = build()
        connection = manager.establish(0, 8, BandwidthRequest(4))
        assert connection is not None
        assert connection.path[0] == 0
        assert connection.path[-1] == 8
        assert connection.hops == 5  # 5 routers, 4 links
        assert len(connection.vcs) == 5
        assert manager.stats.established == 1

    def test_rejects_same_source_destination(self):
        _, manager, _, _ = build()
        with pytest.raises(ValueError):
            manager.establish(3, 3, BandwidthRequest(1))

    def test_bandwidth_charged_along_path(self):
        network, manager, _, _ = build()
        connection = manager.establish(0, 2, BandwidthRequest(4))
        for i, node in enumerate(connection.path):
            router = network.routers[node]
            assert router.admission.outputs[connection.ports[i]].allocated_cycles == 4

    def test_channel_mappings_installed(self):
        network, manager, _, _ = build()
        connection = manager.establish(0, 2, BandwidthRequest(4))
        for i in range(connection.hops - 1):
            node = connection.path[i]
            router = network.routers[node]
            next_hop = router.rau.next_hop(
                connection.entry_ports[i], connection.vcs[i]
            )
            assert next_hop == (connection.ports[i], connection.vcs[i + 1])

    def test_setup_latency_scales_with_search(self):
        network, manager, _, _ = build()
        short = manager.establish(0, 1, BandwidthRequest(1))
        long = manager.establish(0, 8, BandwidthRequest(1))
        assert long.ready_at > short.ready_at >= 0

    def test_establish_fails_when_links_full(self):
        # Ring: node 0 to node 2 has exactly two minimal... use a line.
        topo = Topology(3, [(0, 1), (1, 2)])
        network, manager, _, config = build(topo=topo)
        cap = config.round_length
        first = manager.establish(0, 2, BandwidthRequest(cap))
        assert first is not None
        second = manager.establish(0, 2, BandwidthRequest(1))
        assert second is None
        assert manager.stats.failed == 1

    def test_establish_backtracks_onto_alternative_path(self):
        # Square 0-1-3 / 0-2-3 plus a spur 3-4.  A 1->4 connection fills
        # the 1->3 link (its only minimal path), so a 0->3 probe must back
        # out of node 1 and succeed via node 2.
        topo = Topology(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        network, manager, _, config = build(topo=topo)
        cap = config.round_length
        blocker = manager.establish(1, 4, BandwidthRequest(cap))
        assert blocker is not None
        assert blocker.path == [1, 3, 4]
        second = manager.establish(0, 3, BandwidthRequest(cap))
        assert second is not None
        assert second.path == [0, 2, 3]
        assert second.probe.backtracks >= 1

    def test_vc_exhaustion_blocks_establishment(self):
        topo = Topology(2, [(0, 1)])
        network, manager, _, _ = build(topo=topo, vcs=2)
        assert manager.establish(0, 1, BandwidthRequest(1)) is not None
        assert manager.establish(0, 1, BandwidthRequest(1)) is not None
        # Both VCs on router 1's input port 0 are now taken.
        assert manager.establish(0, 1, BandwidthRequest(1)) is None

    def test_acceptance_ratio(self):
        topo = Topology(2, [(0, 1)])
        network, manager, _, config = build(topo=topo)
        cap = config.round_length
        manager.establish(0, 1, BandwidthRequest(cap))
        manager.establish(0, 1, BandwidthRequest(cap))
        assert manager.stats.attempts == 2
        assert manager.stats.acceptance_ratio == pytest.approx(0.5)


class TestTeardown:
    def test_releases_everything(self):
        network, manager, _, _ = build()
        connection = manager.establish(0, 8, BandwidthRequest(4))
        manager.teardown(connection)
        assert connection.closed
        for node in connection.path:
            router = network.routers[node]
            for allocator in router.admission.outputs:
                assert allocator.allocated_cycles == 0
            for port in router.input_ports:
                assert port.free_vc_count() == 8
        assert not manager.connections

    def test_double_teardown_rejected(self):
        _, manager, _, _ = build()
        connection = manager.establish(0, 8, BandwidthRequest(4))
        manager.teardown(connection)
        with pytest.raises(RuntimeError):
            manager.teardown(connection)

    def test_capacity_reusable_after_teardown(self):
        topo = Topology(2, [(0, 1)])
        network, manager, _, config = build(topo=topo)
        cap = config.round_length
        first = manager.establish(0, 1, BandwidthRequest(cap))
        manager.teardown(first)
        second = manager.establish(0, 1, BandwidthRequest(cap))
        assert second is not None


class TestRenegotiation:
    def test_upgrade_applies_everywhere(self):
        network, manager, _, _ = build()
        connection = manager.establish(0, 8, BandwidthRequest(2))
        assert manager.renegotiate(connection, BandwidthRequest(6))
        assert connection.request.permanent_cycles == 6
        for i, node in enumerate(connection.path):
            router = network.routers[node]
            assert router.admission.outputs[connection.ports[i]].allocated_cycles == 6

    def test_blocked_upgrade_rolls_back_all_hops(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        network, manager, _, config = build(topo=topo)
        cap = config.round_length
        victim = manager.establish(0, 2, BandwidthRequest(2))
        # Fill the 1->2 link so the victim cannot grow.
        blocker = manager.establish(1, 2, BandwidthRequest(cap - 2))
        assert blocker is not None
        assert not manager.renegotiate(victim, BandwidthRequest(4))
        assert victim.request.permanent_cycles == 2
        for i, node in enumerate(victim.path):
            router = network.routers[node]
            # Victim's own footprint is back to 2 everywhere it is alone.
            allocated = router.admission.outputs[victim.ports[i]].allocated_cycles
            assert allocated in (2, cap)  # cap where it shares with blocker

    def test_renegotiate_closed_rejected(self):
        _, manager, _, _ = build()
        connection = manager.establish(0, 8, BandwidthRequest(2))
        manager.teardown(connection)
        with pytest.raises(RuntimeError):
            manager.renegotiate(connection, BandwidthRequest(4))

    def test_set_priority_updates_every_hop(self):
        network, manager, _, _ = build()
        connection = manager.establish(0, 8, BandwidthRequest(2))
        manager.set_priority(connection, 0.75)
        for i, node in enumerate(connection.path):
            vc = network.routers[node].input_ports[
                connection.entry_ports[i]
            ].vcs[connection.vcs[i]]
            assert vc.static_priority == 0.75


class TestConnectionChurn:
    def test_random_open_close_cycles_return_to_baseline(self):
        """Video-server churn: connections open and close repeatedly; all
        router resources must return to baseline when everything closes."""
        from repro.sim.rng import SeededRng

        network, manager, _, config = build()
        rng = SeededRng(77, "churn")
        live = []
        for step in range(300):
            if live and (rng.random() < 0.45 or len(live) > 30):
                manager.teardown(live.pop(rng.randint(0, len(live) - 1)))
                continue
            src = rng.randint(0, 8)
            dst = rng.randint(0, 8)
            if src == dst:
                continue
            connection = manager.establish(
                src, dst, BandwidthRequest(rng.randint(1, 4))
            )
            if connection is not None:
                live.append(connection)
        for connection in live:
            manager.teardown(connection)
        for router in network.routers:
            router.check_invariants()
            for allocator in router.admission.outputs:
                assert allocator.allocated_cycles == 0
                assert allocator.active_connections == 0
            for allocator in router.admission.inputs:
                assert allocator.allocated_cycles == 0
            for port in router.input_ports:
                assert port.free_vc_count() == 8
            assert len(router.rau.mappings) == 0
        assert not manager.connections
