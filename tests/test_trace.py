"""Tests for the event tracer and its router integration."""

import pytest

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.flit import Flit, FlitType
from repro.core.priority import BiasedPriority
from repro.core.router import Router
from repro.core.switch_scheduler import GreedyPriorityScheduler
from repro.core.virtual_channel import ServiceClass
from repro.sim.engine import Simulator
from repro.sim.trace import CATEGORIES, NullTracer, TraceRecord, Tracer


class TestTracer:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_records_in_order(self):
        tracer = Tracer()
        tracer.record(1, "inject", "a")
        tracer.record(2, "deliver", "b")
        records = tracer.records()
        assert [r.time for r in records] == [1, 2]
        assert tracer.recorded == 2

    def test_bounded_buffer_drops_oldest(self):
        tracer = Tracer(capacity=2)
        for t in range(5):
            tracer.record(t, "inject", "x")
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert [r.time for r in tracer.records()] == [3, 4]

    def test_category_filter_at_record_time(self):
        tracer = Tracer(categories=("deliver",))
        tracer.record(1, "inject", "skip me")
        tracer.record(2, "deliver", "keep me")
        assert len(tracer) == 1
        assert tracer.records()[0].category == "deliver"

    def test_query_filters(self):
        tracer = Tracer()
        tracer.record(1, "inject", "a", connection_id=7, flit_id=100)
        tracer.record(2, "inject", "b", connection_id=8, flit_id=101)
        tracer.record(3, "deliver", "c", connection_id=7, flit_id=100)
        assert len(tracer.records(connection_id=7)) == 2
        assert len(tracer.records(flit_id=101)) == 1
        assert len(tracer.records(category="deliver", connection_id=7)) == 1

    def test_disable(self):
        tracer = Tracer()
        tracer.enabled = False
        tracer.record(1, "inject", "x")
        assert len(tracer) == 0

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1, "inject", "x")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.recorded == 1

    def test_format(self):
        tracer = Tracer()
        tracer.record(5, "deliver", "out", connection_id=3, flit_id=9)
        text = tracer.format()
        assert "deliver" in text
        assert "conn=3" in text
        assert "flit=9" in text

    def test_record_str(self):
        record = TraceRecord(10, "grant", "port 0")
        assert "grant" in str(record)

    def test_unknown_filter_category_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            Tracer(categories=("deliver", "delivery"))

    def test_unknown_category_rejected_at_record_time(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="unknown trace category"):
            tracer.record(1, "injected", "typo")
        assert len(tracer) == 0

    def test_all_known_categories_accepted(self):
        tracer = Tracer(categories=CATEGORIES)
        for t, category in enumerate(CATEGORIES):
            tracer.record(t, category, "ok")
        assert len(tracer) == len(CATEGORIES)

    def test_disabled_tracer_skips_category_check(self):
        # The enable flag is the zero-cost escape hatch: a disabled
        # tracer must not pay (or raise) for anything.
        tracer = Tracer()
        tracer.enabled = False
        tracer.record(1, "not-a-category", "ignored")
        assert len(tracer) == 0

    def test_null_tracer_discards(self):
        tracer = NullTracer()
        tracer.record(1, "inject", "x")
        assert len(tracer) == 0
        assert tracer.records() == []


class TestRouterIntegration:
    def build(self, tracer):
        config = RouterConfig(
            num_ports=4, vcs_per_port=8, enforce_round_budgets=False,
            round_factor=1,
        )
        sim = Simulator()
        router = Router(
            config, BiasedPriority(), GreedyPriorityScheduler(), sim,
            tracer=tracer,
        )
        return router, sim, config

    def test_flit_lifecycle_traced(self):
        tracer = Tracer()
        router, sim, config = self.build(tracer)
        vc_index = router.open_connection(
            1, 0, 2, BandwidthRequest(2), interarrival_cycles=5.0
        )
        flit = Flit(FlitType.DATA, connection_id=1, created=0)
        router.inject(0, vc_index, flit)
        sim.run(3)
        lifecycle = tracer.records(flit_id=flit.flit_id)
        categories = [r.category for r in lifecycle]
        assert categories == ["inject", "deliver"]
        assert lifecycle[0].time <= lifecycle[1].time

    def test_connection_events_traced(self):
        tracer = Tracer()
        router, sim, config = self.build(tracer)
        vc_index = router.open_connection(
            1, 0, 2, BandwidthRequest(2), interarrival_cycles=5.0
        )
        router.close_connection(1, 0, vc_index, 2, BandwidthRequest(2))
        events = tracer.records(category="connection")
        assert len(events) == 2
        assert "open" in events[0].message
        assert "close" in events[1].message

    def test_round_boundary_traced(self):
        tracer = Tracer(categories=("round",))
        router, sim, config = self.build(tracer)
        sim.run(config.round_length * 2)
        assert len(tracer.records(category="round")) == 2

    def test_cut_through_traced(self):
        tracer = Tracer()
        router, sim, config = self.build(tracer)
        vc_index = router.open_packet_vc(0, 3, ServiceClass.CONTROL, 60)
        flit = Flit(FlitType.CONTROL, connection_id=60, is_tail=True)
        router.inject(0, vc_index, flit)
        assert tracer.records(category="cutthrough")

    def test_default_router_has_null_tracer(self):
        router, sim, config = self.build(None)
        assert isinstance(router.tracer, NullTracer)
