"""Tests for flit/phit data types."""

import pytest

from repro.core.flit import (
    ControlCommand,
    Flit,
    FlitType,
    IMMEDIATE_TYPES,
    Phit,
    fragment_into_phits,
)


class TestFlit:
    def test_ids_are_unique(self):
        a = Flit(FlitType.DATA)
        b = Flit(FlitType.DATA)
        assert a.flit_id != b.flit_id

    def test_is_data(self):
        assert Flit(FlitType.DATA).is_data
        assert not Flit(FlitType.BEST_EFFORT).is_data

    def test_immediate_types(self):
        assert Flit(FlitType.PROBE).is_immediate
        assert Flit(FlitType.ACK).is_immediate
        assert Flit(FlitType.CONTROL).is_immediate
        assert Flit(FlitType.TEARDOWN).is_immediate
        assert Flit(FlitType.BACKTRACK).is_immediate
        assert not Flit(FlitType.DATA).is_immediate
        assert not Flit(FlitType.BEST_EFFORT).is_immediate
        assert FlitType.DATA not in IMMEDIATE_TYPES

    def test_switch_delay_from_creation(self):
        flit = Flit(FlitType.DATA, created=10)
        flit.ready_time = 12
        flit.depart_time = 17
        assert flit.switch_delay() == 7  # counts from created
        assert flit.head_wait() == 5

    def test_switch_delay_requires_departure(self):
        flit = Flit(FlitType.DATA, created=1)
        with pytest.raises(ValueError):
            flit.switch_delay()

    def test_head_wait_requires_both_stamps(self):
        flit = Flit(FlitType.DATA, created=1)
        flit.depart_time = 5
        with pytest.raises(ValueError):
            flit.head_wait()

    def test_control_payload(self):
        flit = Flit(
            FlitType.CONTROL,
            command=ControlCommand.SET_BANDWIDTH,
            argument=42,
        )
        assert flit.command is ControlCommand.SET_BANDWIDTH
        assert flit.argument == 42

    def test_repr_mentions_type_and_connection(self):
        flit = Flit(FlitType.DATA, connection_id=9, sequence=3)
        text = repr(flit)
        assert "data" in text
        assert "conn=9" in text


class TestPhits:
    def test_fragmentation_count(self):
        flit = Flit(FlitType.DATA)
        phits = fragment_into_phits(flit, 8)
        assert len(phits) == 8
        assert all(p.flit_id == flit.flit_id for p in phits)

    def test_fragment_indices_ordered(self):
        phits = fragment_into_phits(Flit(FlitType.DATA), 4)
        assert [p.index for p in phits] == [0, 1, 2, 3]
        assert all(p.total == 4 for p in phits)

    def test_last_phit_flag(self):
        phits = fragment_into_phits(Flit(FlitType.DATA), 3)
        assert [p.is_last for p in phits] == [False, False, True]

    def test_single_phit_flit(self):
        phits = fragment_into_phits(Flit(FlitType.DATA), 1)
        assert len(phits) == 1
        assert phits[0].is_last

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            fragment_into_phits(Flit(FlitType.DATA), 0)
