"""Tests for frame traces, result export and the queueing references."""

import io
import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bandwidth import BandwidthRequest
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.core.router import Router
from repro.core.switch_scheduler import GreedyPriorityScheduler
from repro.core.virtual_channel import ServiceClass
from repro.harness.export import (
    figure_from_dict,
    figure_to_dict,
    result_to_dict,
    round_trip_figure,
    spec_to_dict,
    write_figure_csv,
    write_figure_json,
    write_result_json,
)
from repro.harness.figures import FigureData
from repro.harness.single_router import ExperimentSpec, run_single_router_experiment
from repro.qos.queueing import (
    md1_mean_sojourn,
    md1_mean_wait,
    nd_d1_mean_wait,
    nd_d1_worst_case_wait,
    saturation_load_hol_blocking,
)
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.traffic.traces import FrameRecord, FrameTrace, TraceVbrSource
from repro.traffic.vbr import MpegProfile


class TestFrameTrace:
    def trace(self):
        return FrameTrace(
            30.0,
            [FrameRecord("I", 3000), FrameRecord("B", 1000), FrameRecord("P", 2000)],
        )

    def test_record_validation(self):
        with pytest.raises(ValueError):
            FrameRecord("", 100)
        with pytest.raises(ValueError):
            FrameRecord("I", 0)

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            FrameTrace(0.0, [])

    def test_statistics(self):
        trace = self.trace()
        assert len(trace) == 3
        assert trace.total_bits == 6000
        assert trace.duration_seconds == pytest.approx(0.1)
        assert trace.mean_rate_bps == pytest.approx(60000.0)
        assert trace.kinds() == ["I", "B", "P"]

    def test_peak_rate_single_frame_window(self):
        trace = self.trace()
        assert trace.peak_rate_bps(1) == pytest.approx(3000 * 30.0)

    def test_peak_rate_window_bounds(self):
        trace = self.trace()
        with pytest.raises(ValueError):
            trace.peak_rate_bps(0)
        # Window larger than the trace clamps to the whole trace.
        assert trace.peak_rate_bps(10) == pytest.approx(trace.mean_rate_bps)

    def test_dump_parse_roundtrip(self):
        trace = self.trace()
        buffer = io.StringIO()
        trace.dump(buffer)
        buffer.seek(0)
        parsed = FrameTrace.parse(buffer)
        assert parsed.frame_rate_hz == trace.frame_rate_hz
        assert parsed.frames == trace.frames

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            FrameTrace.parse(io.StringIO("I 100 extra\n"))

    def test_parse_skips_blanks_and_comments(self):
        text = "# a comment\n\n# frame_rate_hz: 25.0\nI 100\n"
        trace = FrameTrace.parse(io.StringIO(text))
        assert trace.frame_rate_hz == 25.0
        assert len(trace) == 1

    def test_synthesise_matches_profile_rate(self):
        profile = MpegProfile(mean_rate_bps=5e6, frame_rate_hz=30.0, sigma=0.2)
        trace = FrameTrace.synthesise(profile, 600, SeededRng(4, "tr"))
        assert len(trace) == 600
        assert trace.mean_rate_bps == pytest.approx(5e6, rel=0.15)
        assert set(trace.kinds()) == {"I", "P", "B"}

    def test_synthesise_validation(self):
        profile = MpegProfile(mean_rate_bps=5e6)
        with pytest.raises(ValueError):
            FrameTrace.synthesise(profile, 0, SeededRng(1, "x"))


class TestTraceVbrSource:
    def test_plays_and_loops(self):
        config = RouterConfig(
            num_ports=4, vcs_per_port=8, enforce_round_budgets=False
        )
        sim = Simulator()
        router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)
        vc = router.open_connection(
            1, 0, 1, BandwidthRequest(1, 4), service_class=ServiceClass.VBR
        )
        # 2 tiny frames at a very high frame rate so the trace loops.
        trace = FrameTrace(
            10000.0, [FrameRecord("I", 256), FrameRecord("B", 128)]
        )
        source = TraceVbrSource(sim, router, 1, 0, vc, trace, config)
        source.start()
        sim.run(5000)
        assert source.frames_played > 2  # looped
        assert source.flits_injected == source.flits_generated
        assert router.connection_stats[1].flits > 0

    def test_no_loop_stops_at_end(self):
        config = RouterConfig(
            num_ports=4, vcs_per_port=8, enforce_round_budgets=False
        )
        sim = Simulator()
        router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)
        vc = router.open_connection(
            1, 0, 1, BandwidthRequest(1, 4), service_class=ServiceClass.VBR
        )
        trace = FrameTrace(10000.0, [FrameRecord("I", 256)])
        source = TraceVbrSource(sim, router, 1, 0, vc, trace, config, loop=False)
        source.start()
        sim.run(3000)
        assert source.frames_played == 1

    def test_empty_trace_rejected(self):
        config = RouterConfig(num_ports=4, vcs_per_port=8)
        sim = Simulator()
        router = Router(config, BiasedPriority(), GreedyPriorityScheduler(), sim)
        with pytest.raises(ValueError):
            TraceVbrSource(sim, router, 1, 0, 0, FrameTrace(30.0, []), config)


TINY = RouterConfig(num_ports=4, vcs_per_port=32, enforce_round_budgets=False)


class TestExport:
    def result(self):
        spec = ExperimentSpec(
            target_load=0.4, config=TINY, candidates=4, seed=2,
            warmup_cycles=300, measure_cycles=1200,
        )
        return run_single_router_experiment(spec)

    def test_spec_round_trips_through_json(self):
        record = spec_to_dict(self.result().spec)
        text = json.dumps(record)
        assert json.loads(text)["target_load"] == 0.4
        assert json.loads(text)["config"]["num_ports"] == 4

    def test_result_record_structure(self):
        record = result_to_dict(self.result())
        assert record["flit_weighted"]["flits_delivered"] > 0
        assert record["per_connection"]["connections"] > 0
        assert record["per_rate"]
        json.dumps(record)  # JSON-safe

    def test_write_result_json(self):
        buffer = io.StringIO()
        write_result_json(self.result(), buffer)
        payload = json.loads(buffer.getvalue())
        assert payload["utilisation"] > 0

    def figure(self):
        return FigureData(
            title="T", x_label="load", xs=[0.1, 0.2],
            series={"a": [1.0, 2.0], "b": [3.0, 4.0]},
        )

    def test_figure_json_roundtrip(self):
        original = self.figure()
        rebuilt = round_trip_figure(original)
        assert rebuilt.title == original.title
        assert rebuilt.xs == original.xs
        assert rebuilt.series == original.series

    def test_figure_csv(self):
        buffer = io.StringIO()
        write_figure_csv(self.figure(), buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert lines[0] == "load,a,b"
        assert lines[1] == "0.1,1.0,3.0"

    def test_figure_from_dict_coerces_types(self):
        rebuilt = figure_from_dict(
            {"title": "T", "x_label": "x", "xs": ["0.5"], "series": {"s": ["2"]}}
        )
        assert rebuilt.xs == [0.5]
        assert rebuilt.series["s"] == [2.0]


class TestQueueingReferences:
    def test_md1_known_values(self):
        assert md1_mean_wait(0.0) == 0.0
        assert md1_mean_wait(0.5) == pytest.approx(0.5)
        assert md1_mean_wait(0.9) == pytest.approx(4.5)
        assert md1_mean_sojourn(0.5) == pytest.approx(1.5)

    def test_md1_validation(self):
        with pytest.raises(ValueError):
            md1_mean_wait(1.0)
        with pytest.raises(ValueError):
            md1_mean_wait(-0.1)

    def test_nd_d1_worst_case(self):
        assert nd_d1_worst_case_wait(8, 10.0) == 7.0
        with pytest.raises(ValueError):
            nd_d1_worst_case_wait(8, 7.0)  # unstable

    def test_nd_d1_mean_below_md1(self):
        # Periodic superposition is smoother than Poisson.
        for n, period in [(8, 10.0), (32, 40.0), (64, 70.0)]:
            rho = n / period
            assert nd_d1_mean_wait(n, period) < md1_mean_wait(rho)

    def test_nd_d1_single_stream_no_wait(self):
        assert nd_d1_mean_wait(1, 5.0) == 0.0

    def test_hol_blocking_limits(self):
        assert saturation_load_hol_blocking(1) == 1.0
        assert saturation_load_hol_blocking(8) == pytest.approx(0.6184)
        assert saturation_load_hol_blocking(1000) == pytest.approx(0.5858, abs=1e-3)
        with pytest.raises(ValueError):
            saturation_load_hol_blocking(0)

    def test_simulated_perfect_switch_below_md1_envelope(self):
        """The perfect switch reduces each input to a ΣD/D/1 queue, which
        must sit below the Poisson (M/D/1) envelope at equal load."""
        spec = ExperimentSpec(
            target_load=0.6, config=TINY, scheduler="perfect", candidates=8,
            seed=5, warmup_cycles=500, measure_cycles=4000,
        )
        result = run_single_router_experiment(spec)
        # Delay = wait + 1 service cycle (the pipeline minimum).
        simulated_wait = result.mean_delay_cycles - 1.0
        envelope = md1_mean_wait(result.offered_load)
        assert simulated_wait <= envelope + 0.5

    def test_simulated_c1_saturation_near_hol_theory(self):
        """C=1 candidate selection behaves like HOL blocking; measured
        saturation must land near the theoretical limit."""
        from repro.harness.saturation import find_saturation_load

        config = RouterConfig(
            num_ports=4, vcs_per_port=64, round_factor=8,
            enforce_round_budgets=False,
        )
        base = ExperimentSpec(
            target_load=0.5, config=config, candidates=1, seed=3,
            warmup_cycles=1000, measure_cycles=4000,
        )
        estimate = find_saturation_load(base, low=0.4, high=0.95, tolerance=0.05)
        theory = saturation_load_hol_blocking(4)
        assert abs(estimate.estimate - theory) < 0.15
