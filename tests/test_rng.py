"""Tests for the deterministic RNG substreams."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import SeededRng, substream_seed


class TestSubstreamSeed:
    def test_deterministic(self):
        assert substream_seed(1, "a") == substream_seed(1, "a")

    def test_distinct_names(self):
        assert substream_seed(1, "a") != substream_seed(1, "b")

    def test_distinct_masters(self):
        assert substream_seed(1, "a") != substream_seed(2, "a")

    def test_64_bit_range(self):
        seed = substream_seed(12345, "stream")
        assert 0 <= seed < 2**64

    @given(st.integers(0, 2**32), st.text(max_size=30))
    def test_always_in_range(self, master, name):
        assert 0 <= substream_seed(master, name) < 2**64


class TestSeededRng:
    def test_same_stream_same_sequence(self):
        a = SeededRng(7, "x")
        b = SeededRng(7, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_diverge(self):
        a = SeededRng(7, "x")
        b = SeededRng(7, "y")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_spawn_is_namespaced(self):
        parent = SeededRng(7, "x")
        child = parent.spawn("sub")
        direct = SeededRng(7, "x.sub")
        assert [child.random() for _ in range(5)] == [
            direct.random() for _ in range(5)
        ]

    def test_spawn_does_not_consume_parent(self):
        a = SeededRng(7, "x")
        b = SeededRng(7, "x")
        a.spawn("child")
        assert a.random() == b.random()

    def test_randint_bounds(self):
        rng = SeededRng(1, "r")
        values = [rng.randint(3, 5) for _ in range(200)]
        assert set(values) == {3, 4, 5}

    def test_uniform_bounds(self):
        rng = SeededRng(1, "u")
        for _ in range(100):
            v = rng.uniform(2.0, 3.0)
            assert 2.0 <= v <= 3.0

    def test_choice(self):
        rng = SeededRng(1, "c")
        seq = ["a", "b", "c"]
        assert all(rng.choice(seq) in seq for _ in range(50))

    def test_sample_distinct(self):
        rng = SeededRng(1, "s")
        picked = rng.sample(list(range(20)), 5)
        assert len(picked) == 5
        assert len(set(picked)) == 5

    def test_shuffle_preserves_elements(self):
        rng = SeededRng(1, "sh")
        items = list(range(30))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_expovariate_positive(self):
        rng = SeededRng(1, "e")
        assert all(rng.expovariate(0.5) > 0 for _ in range(100))

    def test_expovariate_mean(self):
        rng = SeededRng(1, "em")
        n = 5000
        mean = sum(rng.expovariate(0.1) for _ in range(n)) / n
        assert mean == pytest.approx(10.0, rel=0.1)

    def test_geometric_support(self):
        rng = SeededRng(1, "g")
        values = [rng.geometric(0.5) for _ in range(300)]
        assert min(values) >= 1
        assert max(values) > 1  # virtually certain

    def test_geometric_mean(self):
        rng = SeededRng(1, "gm")
        n = 5000
        mean = sum(rng.geometric(0.25) for _ in range(n)) / n
        assert mean == pytest.approx(4.0, rel=0.1)

    def test_geometric_validates_probability(self):
        rng = SeededRng(1, "gv")
        with pytest.raises(ValueError):
            rng.geometric(0.0)
        with pytest.raises(ValueError):
            rng.geometric(1.5)

    def test_geometric_p_one(self):
        rng = SeededRng(1, "g1")
        assert all(rng.geometric(1.0) == 1 for _ in range(10))

    def test_iter_uniform(self):
        rng = SeededRng(1, "iu")
        it = rng.iter_uniform(0.0, 1.0)
        values = [next(it) for _ in range(10)]
        assert all(0.0 <= v <= 1.0 for v in values)

    @given(st.integers(0, 1000), st.integers(0, 1000))
    def test_gauss_reproducible(self, seed, unused):
        a = SeededRng(seed, "n")
        b = SeededRng(seed, "n")
        assert a.gauss(0, 1) == b.gauss(0, 1)


class TestRngStateCapture:
    """getstate/setstate — the checkpoint subsystem's RNG contract."""

    def test_setstate_continues_exactly(self):
        rng = SeededRng(7, "x")
        [rng.random() for _ in range(5)]
        state = rng.getstate()
        ahead = [rng.random() for _ in range(10)]
        rng.setstate(state)
        assert [rng.random() for _ in range(10)] == ahead

    def test_state_transfers_between_instances(self):
        a = SeededRng(7, "x")
        [a.random() for _ in range(5)]
        b = SeededRng(99, "other")  # different seed AND stream name
        b.setstate(a.getstate())
        assert [b.random() for _ in range(10)] == [
            a.random() for _ in range(10)
        ]

    def test_getstate_does_not_advance_stream(self):
        a = SeededRng(7, "x")
        b = SeededRng(7, "x")
        for _ in range(20):
            a.getstate()
        assert [a.random() for _ in range(10)] == [
            b.random() for _ in range(10)
        ]

    def test_restoring_parent_leaves_siblings_alone(self):
        parent = SeededRng(7, "x")
        child = parent.spawn("child")
        untouched = SeededRng(7, "x").spawn("child")
        state = parent.getstate()
        [parent.random() for _ in range(5)]
        parent.setstate(state)
        # The child's substream is an independent generator: rewinding the
        # parent must not rewind or perturb it.
        assert [child.random() for _ in range(10)] == [
            untouched.random() for _ in range(10)
        ]

    def test_state_mixes_across_draw_kinds(self):
        rng = SeededRng(3, "mixed")
        rng.randint(0, 100)
        rng.gauss(0, 1)  # leaves cached gauss state behind
        state = rng.getstate()
        ahead = [rng.gauss(0, 1), rng.random(), rng.expovariate(0.5)]
        rng.setstate(state)
        assert [rng.gauss(0, 1), rng.random(), rng.expovariate(0.5)] == ahead
