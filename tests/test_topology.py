"""Tests for network topologies and port assignment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.topology import (
    Topology,
    TopologyError,
    hypercube,
    irregular,
    mesh,
    ring,
    torus,
)
from repro.sim.rng import SeededRng


class TestTopologyBasics:
    def test_rejects_bad_edges(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 2)])
        with pytest.raises(TopologyError):
            Topology(2, [(0, 0)])
        with pytest.raises(TopologyError):
            Topology(2, [(0, 1), (1, 0)])  # duplicate

    def test_rejects_too_few_ports(self):
        with pytest.raises(TopologyError):
            Topology(3, [(0, 1), (0, 2)], num_ports=2)

    def test_port_numbering_follows_sorted_neighbors(self):
        topo = Topology(3, [(0, 2), (0, 1)])
        assert topo.port_of(0, 1) == 0
        assert topo.port_of(0, 2) == 1
        assert topo.neighbor_on_port(0, 0) == 1
        assert topo.neighbor_on_port(0, 1) == 2

    def test_host_ports_after_link_ports(self):
        topo = Topology(3, [(0, 1), (1, 2)], num_ports=4)
        assert topo.host_port(0) == 1
        assert topo.host_ports(0) == [1, 2, 3]
        assert topo.host_port(1) == 2
        assert topo.neighbor_on_port(0, 3) is None

    def test_missing_link_rejected(self):
        topo = Topology(3, [(0, 1)])
        with pytest.raises(TopologyError):
            topo.port_of(0, 2)

    def test_edges_sorted_unique(self):
        topo = Topology(3, [(2, 1), (1, 0)])
        assert topo.edges() == [(0, 1), (1, 2)]

    def test_distance(self):
        topo = Topology(4, [(0, 1), (1, 2), (2, 3)])
        assert topo.distance(0, 3) == 3
        assert topo.distance(2, 2) == 0

    def test_disconnected_distance_raises(self):
        topo = Topology(4, [(0, 1), (2, 3)])
        assert not topo.is_connected()
        with pytest.raises(TopologyError):
            topo.distance(0, 3)

    def test_remove_link(self):
        topo = Topology(3, [(0, 1), (1, 2), (0, 2)])
        assert topo.distance(0, 2) == 1
        topo.remove_link(0, 2)
        assert topo.distance(0, 2) == 2
        assert topo.degree(0) == 1
        with pytest.raises(TopologyError):
            topo.remove_link(0, 2)

    def test_node_range_checked(self):
        topo = Topology(2, [(0, 1)])
        with pytest.raises(TopologyError):
            topo.neighbors(2)


class TestConstructors:
    def test_ring(self):
        topo = ring(5)
        assert topo.num_nodes == 5
        assert all(topo.degree(n) == 2 for n in range(5))
        assert topo.distance(0, 2) == 2
        assert topo.distance(0, 3) == 2  # wraps

    def test_ring_minimum_size(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_mesh(self):
        topo = mesh(3, 3)
        assert topo.num_nodes == 9
        assert topo.degree(4) == 4  # centre
        assert topo.degree(0) == 2  # corner
        assert topo.distance(0, 8) == 4

    def test_mesh_validation(self):
        with pytest.raises(TopologyError):
            mesh(0, 3)

    def test_torus(self):
        topo = torus(3, 3)
        assert all(topo.degree(n) == 4 for n in range(9))
        assert topo.distance(0, 2) == 1  # wraparound

    def test_torus_minimum(self):
        # Size-1 dimensions would wrap a node onto itself.
        with pytest.raises(TopologyError):
            torus(1, 3)
        with pytest.raises(TopologyError):
            torus(3, 1)

    def test_torus_size_two_dimension_dedupes_wrap_links(self):
        # Regression: the wrap-around edge in a size-2 dimension connects
        # the same router pair as the mesh edge.  Pre-fix this either
        # raised or (if the guard were simply removed) produced duplicate
        # links and a misleading port count.
        topo = torus(2, 3)
        assert topo.num_nodes == 6
        # Width-2 dimension: 3 deduped horizontal links; height-3 wraps
        # are distinct: 6 vertical links.
        assert len(topo.edges()) == 9
        assert all(topo.degree(n) == 3 for n in range(6))
        # One port per neighbor plus at least one host port.
        assert topo.num_ports == 4
        assert topo.is_connected()
        # The degenerate 2x2 torus collapses to the 2x2 mesh's link set.
        tiny = torus(2, 2)
        assert len(tiny.edges()) == 4
        assert all(tiny.degree(n) == 2 for n in range(4))

    def test_hypercube(self):
        topo = hypercube(3)
        assert topo.num_nodes == 8
        assert all(topo.degree(n) == 3 for n in range(8))
        assert topo.distance(0b000, 0b111) == 3

    def test_hypercube_validation(self):
        with pytest.raises(TopologyError):
            hypercube(0)

    def test_all_regular_topologies_connected(self):
        for topo in (ring(6), mesh(4, 2), torus(3, 4), hypercube(4)):
            assert topo.is_connected()

    @settings(max_examples=20)
    @given(st.integers(0, 1000), st.integers(4, 20))
    def test_irregular_connected_with_host_ports(self, seed, nodes):
        rng = SeededRng(seed, "topo")
        topo = irregular(nodes, rng, mean_degree=3.0)
        assert topo.is_connected()
        for node in range(nodes):
            assert topo.host_ports(node), f"node {node} has no host port"

    def test_irregular_mean_degree_close_to_target(self):
        rng = SeededRng(5, "deg")
        topo = irregular(30, rng, mean_degree=4.0)
        mean = sum(topo.degree(n) for n in range(30)) / 30
        assert 3.0 <= mean <= 5.0

    def test_irregular_validation(self):
        rng = SeededRng(1, "x")
        with pytest.raises(TopologyError):
            irregular(1, rng)
        with pytest.raises(TopologyError):
            irregular(10, rng, mean_degree=0.5)

    def test_irregular_raises_on_try_exhaustion(self):
        # mean_degree 5.0 on 6 nodes asks for the complete graph (15
        # links); a zero try budget strands the build at the 5-link
        # spanning tree.  That must raise, not return a silently sparser
        # graph whose blocking/latency figures would be skewed.
        rng = SeededRng(2, "exhaust")
        with pytest.raises(TopologyError, match=r"exhausted.*15 requested"):
            irregular(6, rng, mean_degree=5.0, max_tries=0)

    def test_irregular_reaches_target_within_budget(self):
        # The same density succeeds with the default budget (the error
        # path is exhaustion, not the density itself).
        rng = SeededRng(2, "ok")
        topo = irregular(6, rng, mean_degree=5.0)
        assert len(topo.edges()) == 15
