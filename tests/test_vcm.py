"""Tests for the interleaved virtual channel memory (paper §3.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.vcm import AddressGenerator, VcmGeometry, VirtualChannelMemory


def geometry(num_vcs=4, flits_per_vc=4, phits_per_flit=8, num_modules=8):
    return VcmGeometry(num_vcs, flits_per_vc, phits_per_flit, num_modules)


class TestGeometry:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_vcs": 0},
            {"flits_per_vc": 0},
            {"phits_per_flit": 0},
            {"num_modules": 0},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(num_vcs=4, flits_per_vc=4, phits_per_flit=8, num_modules=8)
        base.update(kwargs)
        with pytest.raises(ValueError):
            VcmGeometry(**base)

    def test_capacity(self):
        g = geometry()
        assert g.total_flit_capacity == 16
        assert g.words_per_module == 16  # 4*4*8 / 8

    def test_words_per_module_rounds_up(self):
        g = geometry(num_vcs=1, flits_per_vc=1, phits_per_flit=3, num_modules=2)
        assert g.words_per_module == 2


class TestAddressGenerator:
    def test_low_order_interleaving(self):
        gen = AddressGenerator(geometry())
        # Consecutive phits of a flit land in consecutive modules.
        modules = gen.modules_for_flit(0, 0)
        assert modules == list(range(8))

    def test_same_vc_adjacent_slots(self):
        gen = AddressGenerator(geometry())
        idx_a = gen.linear_index(1, 0, 7)
        idx_b = gen.linear_index(1, 1, 0)
        assert idx_b == idx_a + 1

    def test_bounds_checked(self):
        gen = AddressGenerator(geometry())
        with pytest.raises(IndexError):
            gen.linear_index(4, 0, 0)
        with pytest.raises(IndexError):
            gen.linear_index(0, 4, 0)
        with pytest.raises(IndexError):
            gen.linear_index(0, 0, 8)

    @given(
        st.integers(0, 3),
        st.integers(0, 3),
        st.integers(0, 7),
    )
    def test_mapping_is_injective(self, vc, slot, phit):
        gen = AddressGenerator(geometry())
        seen = {}
        for v in range(4):
            for s in range(4):
                for p in range(8):
                    key = gen.map(v, s, p)
                    assert key not in seen, f"collision at {key}"
                    seen[key] = (v, s, p)
        assert gen.map(vc, slot, phit) in seen

    def test_mapping_with_odd_module_count(self):
        g = geometry(num_modules=3)
        gen = AddressGenerator(g)
        seen = set()
        for v in range(4):
            for s in range(4):
                for p in range(8):
                    module, word = gen.map(v, s, p)
                    assert 0 <= module < 3
                    assert (module, word) not in seen
                    seen.add((module, word))


class TestVirtualChannelMemory:
    def test_write_read_roundtrip(self):
        vcm = VirtualChannelMemory(geometry())
        vcm.write_flit(2, "payload")
        assert vcm.occupancy(2) == 1
        assert vcm.read_flit(2) == "payload"
        assert vcm.is_empty(2)

    def test_fifo_order_per_vc(self):
        vcm = VirtualChannelMemory(geometry())
        for i in range(4):
            vcm.write_flit(1, f"flit{i}")
        assert [vcm.read_flit(1) for _ in range(4)] == [
            "flit0", "flit1", "flit2", "flit3"
        ]

    def test_vcs_are_independent(self):
        vcm = VirtualChannelMemory(geometry())
        vcm.write_flit(0, "a")
        vcm.write_flit(3, "b")
        assert vcm.read_flit(3) == "b"
        assert vcm.read_flit(0) == "a"

    def test_overflow_raises(self):
        vcm = VirtualChannelMemory(geometry(flits_per_vc=2))
        vcm.write_flit(0, "a")
        vcm.write_flit(0, "b")
        assert vcm.is_full(0)
        with pytest.raises(RuntimeError):
            vcm.write_flit(0, "c")

    def test_underflow_raises(self):
        vcm = VirtualChannelMemory(geometry())
        with pytest.raises(RuntimeError):
            vcm.read_flit(0)
        with pytest.raises(RuntimeError):
            vcm.peek_flit(0)

    def test_peek_does_not_remove(self):
        vcm = VirtualChannelMemory(geometry())
        vcm.write_flit(1, "x")
        assert vcm.peek_flit(1) == "x"
        assert vcm.occupancy(1) == 1

    def test_circular_slot_reuse(self):
        vcm = VirtualChannelMemory(geometry(flits_per_vc=2))
        for i in range(10):
            vcm.write_flit(0, i)
            assert vcm.read_flit(0) == i

    def test_total_occupancy(self):
        vcm = VirtualChannelMemory(geometry())
        vcm.write_flit(0, "a")
        vcm.write_flit(1, "b")
        assert vcm.total_occupancy() == 2

    def test_access_balance_perfect_when_aligned(self):
        # phits_per_flit == num_modules: every flit touches every module.
        vcm = VirtualChannelMemory(geometry())
        for i in range(8):
            vcm.write_flit(i % 4, i)
        assert vcm.access_balance() == pytest.approx(1.0)

    def test_access_balance_zero_before_use(self):
        assert VirtualChannelMemory(geometry()).access_balance() == 0.0

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 3)), max_size=60))
    def test_matches_deque_model(self, ops):
        """The VCM must behave exactly like per-VC FIFOs."""
        from collections import deque

        g = geometry(flits_per_vc=3)
        vcm = VirtualChannelMemory(g)
        model = [deque() for _ in range(4)]
        counter = 0
        for is_write, vc in ops:
            if is_write:
                if len(model[vc]) < 3:
                    vcm.write_flit(vc, counter)
                    model[vc].append(counter)
                    counter += 1
            else:
                if model[vc]:
                    assert vcm.read_flit(vc) == model[vc].popleft()
        for vc in range(4):
            assert vcm.occupancy(vc) == len(model[vc])
