"""Columnar (NumPy) state engine: kernels, identity, and degradation.

Three layers of defence:

* kernel unit/property tests — the sortable-key map, the unpacked
  eligibility mask, and the per-output argmin/argmax selections against
  brute-force oracles, including equal-priority tie-breaking;
* engine identity — randomized small configs (ports, VCs, CBR/VBR/BE
  mix, seeds) stepped under both engines must produce identical
  delivered-flit streams, stats, and telemetry samples, plus mid-run
  flag flips and a checkpoint round-trip;
* NumPy-free degradation — everything imports and runs without NumPy,
  and ``columnar_state=True`` raises the typed error naming the extra.
"""

import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import columnar
from repro.core.columnar import (
    ColumnarUnavailableError,
    FAST_EXTRA,
    _sort_key_desc,
)
from repro.core.config import RouterConfig
from repro.core.priority import BiasedPriority
from repro.harness.kernel_bench import (
    HIGH_VC_COUNT,
    HIGH_VC_RATE_SET,
    build_saturated_scenario,
    run_columnar_identity_check,
)
from repro.harness.single_router import (
    ExperimentSpec,
    run_single_router_experiment,
)
from repro.network.connection import ConnectionManager
from repro.network.interface import NetworkInterface
from repro.network.network import Network
from repro.network.topology import mesh
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.traffic.vbr import MpegProfile

np = columnar.load_numpy()
needs_numpy = pytest.mark.skipif(
    np is None, reason="NumPy (the repro[fast] extra) not installed"
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)


class TestSortKeyDesc:
    """The float -> uint64 descending-order map (NumPy-free)."""

    @given(finite_floats, finite_floats)
    def test_key_order_is_descending_float_order(self, a, b):
        ka, kb = _sort_key_desc(a), _sort_key_desc(b)
        if a > b:
            assert ka < kb
        elif a < b:
            assert ka > kb
        else:
            assert ka == kb

    def test_negative_zero_collapses(self):
        assert _sort_key_desc(-0.0) == _sort_key_desc(0.0)

    def test_keys_fit_in_uint64(self):
        for value in (0.0, -0.0, 1e308, -1e308, 5e-324, -5e-324):
            assert 0 <= _sort_key_desc(value) < 2**64


def brute_force_per_output(bases, outs, mask, num_outputs):
    """Ascending-index scan with strict-``>`` replacement per output."""
    best = {}
    for i, (base, out) in enumerate(zip(bases, outs)):
        if out < 0 or not (mask >> i) & 1:
            continue
        if out not in best or base > bases[best[out]]:
            best[out] = i
    return best


def make_state(bases, outs, num_outputs=4):
    state = columnar.ColumnarState(
        len(bases), priority_discipline=False, num_outputs=num_outputs
    )
    for i, (base, out) in enumerate(zip(bases, outs)):
        state.set_terms(i, base, 1.0, 0, 0)
        state.output_port[i] = out
    state._groups_dirty = True
    return state


bank_cases = st.integers(1, 48).flatmap(
    lambda width: st.tuples(
        st.lists(
            # A narrow value range on purpose: collisions force the
            # lowest-index tie-break to actually matter.
            st.sampled_from([0.0, -0.0, 0.5, 1.0, 1.5, -2.0]),
            min_size=width,
            max_size=width,
        ),
        st.lists(
            st.integers(-1, 3), min_size=width, max_size=width
        ),
        st.integers(0, 2**width - 1),
    )
)


@needs_numpy
class TestSelectionKernels:
    @given(bank_cases)
    @settings(max_examples=60, deadline=None)
    def test_static_per_output_matches_brute_force(self, case):
        bases, outs, mask = case
        state = make_state(bases, outs)
        best = brute_force_per_output(bases, outs, mask, 4)
        rows = state.select_static_per_output(mask, None).tolist()
        expected = sorted(best.values(), key=lambda i: (-bases[i], i))
        assert rows == expected

    @given(bank_cases)
    @settings(max_examples=60, deadline=None)
    def test_dynamic_per_output_matches_brute_force(self, case):
        bases, outs, mask = case
        state = make_state(bases, outs)
        best = brute_force_per_output(bases, outs, mask, 4)
        priorities = state.priorities_full(0, 0, with_offset=False)
        rows, prios, present = state.select_dynamic_per_output(
            priorities, mask
        )
        for out in range(4):
            if out in best:
                assert bool(present[out]), out
                assert int(rows[out]) == best[out]
                assert float(prios[out]) == bases[best[out]]
            else:
                assert not bool(present[out]), out

    @given(st.integers(1, 200).flatmap(
        lambda w: st.tuples(st.just(w), st.integers(0, 2**w - 1))
    ))
    @settings(max_examples=60, deadline=None)
    def test_indices_of_matches_set_bits(self, case):
        width, mask = case
        state = columnar.ColumnarState(width, False, num_outputs=1)
        expected = [i for i in range(width) if (mask >> i) & 1]
        assert state.indices_of(mask).tolist() == expected

    def test_priority_recipes_are_bit_identical(self):
        state = columnar.ColumnarState(3, False, num_outputs=1)
        terms = [(0.75, 7.0, 1234567, 11), (1e6, 3.0, 2**63 + 9, 0),
                 (-2.5, 1.0, 41, 199)]
        for i, (base, div, key, created) in enumerate(terms):
            state.set_terms(i, base, div, key, created)
        idx = state.indices_of(0b111)
        now = 240
        aging = state.priorities(idx, now, 1, with_offset=False).tolist()
        hashed = state.priorities(idx, now, 2, with_offset=False).tolist()
        for i, (base, div, key, created) in enumerate(terms):
            assert aging[i] == base + (now - created) / div
            mixed = ((key % 2**64) * 31 + now) * 2654435761 & 0xFFFFFFFF
            assert hashed[i] == base + mixed / 2**32
        full = state.priorities_full(now, 1, with_offset=False)
        assert full[idx].tolist() == aging


SMALL_CONFIG = RouterConfig(
    num_ports=4, vcs_per_port=16, enforce_round_budgets=False
)
TINY_CONFIG = RouterConfig(
    num_ports=8, vcs_per_port=8, enforce_round_budgets=False
)


def run_spec(config, seed, columnar_state):
    spec = ExperimentSpec(
        target_load=0.7,
        config=config,
        warmup_cycles=400,
        measure_cycles=1200,
        seed=seed,
        telemetry=True,
        columnar_state=columnar_state,
    )
    result = run_single_router_experiment(spec)
    hub = result.recorder.telemetry
    telemetry = {name: hub.channel(name).samples() for name in hub.names()}
    scalars = {
        field: getattr(result, field)
        for field in (
            "offered_load", "connections", "utilisation",
            "mean_delay_cycles", "mean_jitter_cycles",
        )
    }
    return scalars, telemetry


@needs_numpy
class TestEngineIdentity:
    def test_saturated_router_three_way_identity(self):
        report = run_columnar_identity_check(800)
        assert report["identical"], report

    def test_high_vc_identity(self):
        report = run_columnar_identity_check(
            250, rate_set=HIGH_VC_RATE_SET, vcs_per_port=HIGH_VC_COUNT
        )
        assert report["identical"], report

    @pytest.mark.parametrize("config", [SMALL_CONFIG, TINY_CONFIG])
    @pytest.mark.parametrize("seed", [3, 19])
    def test_random_small_configs_identical(self, config, seed):
        """Same spec under both engines: stats and telemetry samples."""
        scalar = run_spec(config, seed, columnar_state=False)
        columnar_run = run_spec(config, seed, columnar_state=True)
        assert scalar[0] == columnar_run[0]
        assert scalar[1] == columnar_run[1]

    def test_mid_run_flag_flips_splice_bit_exactly(self):
        reference_delivered = []
        sim, router = build_saturated_scenario(
            True, delivered=reference_delivered
        )
        sim.run(1200)
        reference_stats = dict(router.stats.scalars)

        delivered = []
        sim, router = build_saturated_scenario(
            True, delivered=delivered, columnar_state=True
        )
        sim.run(400)
        router.set_columnar_state(False)
        sim.run(400)
        router.set_columnar_state(True)
        sim.run(400)
        router.check_invariants()
        assert delivered == reference_delivered
        assert dict(router.stats.scalars) == reference_stats


NODES = 4
CBR_RATES = (10e6, 20e6, 40e6)

operations = st.lists(
    st.tuples(
        st.sampled_from(["cbr", "vbr", "be", "run"]),
        st.integers(0, NODES - 1),
        st.integers(0, NODES - 1),
        st.integers(1, 250),
    ),
    min_size=4,
    max_size=20,
)


def run_network_ops(ops, columnar_state, enforce):
    topo = mesh(2, 2)
    config = RouterConfig(
        num_ports=topo.num_ports,
        vcs_per_port=8,
        vc_buffer_flits=2,
        enforce_round_budgets=enforce,
        round_factor=4,
    )
    sim = Simulator()
    rng = SeededRng(29, "columnar-prop")
    network = Network(
        topo, config, BiasedPriority(), sim, rng, link_latency=2,
        columnar_state=columnar_state,
    )
    manager = ConnectionManager(network)
    interfaces = [
        NetworkInterface(network, manager, n, rng=rng.spawn(f"ni{n}"))
        for n in range(NODES)
    ]
    for kind, src, dst, magnitude in ops:
        destination = dst if dst != src else (src + 1) % NODES
        if kind == "cbr":
            interfaces[src].open_cbr(
                destination, CBR_RATES[magnitude % len(CBR_RATES)]
            )
        elif kind == "vbr":
            interfaces[src].open_vbr(
                destination, MpegProfile(mean_rate_bps=15e6)
            )
        elif kind == "be":
            interfaces[src].send_best_effort(destination)
        else:
            sim.run(magnitude)
    sim.run(250)
    for router in network.routers:
        router.check_invariants()
    fingerprint = {
        "now": sim.now,
        "scalars": [dict(r.stats.scalars) for r in network.routers],
        "received": [
            (ni.flits_received, ni.packets_received) for ni in interfaces
        ],
        "end_to_end": [
            {
                cid: (s.flits, s.delay.mean, s.delay.count, s.jitter.mean)
                for cid, s in sorted(ni.end_to_end.items())
            }
            for ni in interfaces
        ],
    }
    return fingerprint


@needs_numpy
class TestNetworkProperty:
    @settings(max_examples=8, deadline=None)
    @given(operations, st.booleans())
    def test_mixed_workload_engines_identical(self, ops, enforce):
        scalar = run_network_ops(ops, columnar_state=False, enforce=enforce)
        columnar_run = run_network_ops(
            ops, columnar_state=True, enforce=enforce
        )
        assert scalar == columnar_run


class TestNumpyFreeDegradation:
    def test_typed_error_names_the_extra(self, monkeypatch):
        monkeypatch.setattr(columnar, "_np", None)
        monkeypatch.setattr(columnar, "_np_checked", True)
        with pytest.raises(ColumnarUnavailableError) as excinfo:
            columnar.ColumnarState(8, False, num_outputs=4)
        assert FAST_EXTRA in str(excinfo.value)
        assert not columnar.numpy_available()

    def test_scenario_construction_raises_typed_error(self, monkeypatch):
        monkeypatch.setattr(columnar, "_np", None)
        monkeypatch.setattr(columnar, "_np_checked", True)
        with pytest.raises(ColumnarUnavailableError):
            build_saturated_scenario(True, columnar_state=True)

    def test_everything_else_runs_without_numpy(self, tmp_path):
        """Subprocess with NumPy stubbed to an ImportError: the scalar
        engines run a workload end to end; columnar raises the typed
        error naming the extra."""
        (tmp_path / "numpy.py").write_text(
            "raise ImportError('numpy stubbed out for this test')\n"
        )
        script = textwrap.dedent(
            """
            from repro.core import columnar
            assert not columnar.numpy_available()

            from repro.harness.kernel_bench import build_saturated_scenario
            delivered = []
            sim, router = build_saturated_scenario(True, delivered=delivered)
            sim.run(300)
            router.check_invariants()
            assert delivered, "scalar engine delivered no flits"

            try:
                build_saturated_scenario(True, columnar_state=True)
            except columnar.ColumnarUnavailableError as exc:
                assert "repro[fast]" in str(exc)
            else:
                raise AssertionError("ColumnarUnavailableError not raised")
            print("NO-NUMPY-OK")
            """
        )
        import os

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [str(tmp_path), os.path.abspath(src)]
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "NO-NUMPY-OK" in proc.stdout
